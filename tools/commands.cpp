#include "commands.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <functional>
#include <iterator>
#include <map>
#include <chrono>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>

#include "core/algorithms.hpp"
#include "core/annealing.hpp"
#include "core/initial_simplex.hpp"
#include "core/noise_probe.hpp"
#include "core/checkpoint.hpp"
#include "core/trace_io.hpp"
#include "core/pso.hpp"
#include "md/simulation.hpp"
#include "mw/parallel_runner.hpp"
#include "mw/sampling_service.hpp"
#include "net/chaos_transport.hpp"
#include "net/frame.hpp"
#include "net/tcp_transport.hpp"
#include "noise/noisy_function.hpp"
#include "service/service.hpp"
#include "service/service_client.hpp"
#include "service/service_worker.hpp"
#include "simd/dispatch.hpp"
#include "simd/isa.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_analysis.hpp"
#include "testfunctions/functions.hpp"
#include "water/cost.hpp"
#include "water/experimental.hpp"

namespace sfopt::tools {

namespace {

using FnPtr = double (*)(std::span<const double>);

FnPtr lookupFunction(const std::string& name) {
  if (name == "rosenbrock") return &testfunctions::rosenbrock;
  if (name == "powell") return &testfunctions::powell;
  if (name == "sphere") return &testfunctions::sphere;
  if (name == "rastrigin") return &testfunctions::rastrigin;
  if (name == "quadratic") return &testfunctions::quadraticBowl;
  throw ArgError("unknown function '" + name +
                 "' (try rosenbrock, powell, sphere, rastrigin, quadratic)");
}

noise::NoisyFunction makeObjective(const Args& args, std::size_t dim) {
  const std::string fn = args.getString("function", "rosenbrock");
  if (fn == "powell" && dim != 4) throw ArgError("powell requires --dim 4");
  noise::NoisyFunction::Options o;
  o.sigma0 = args.getDouble("sigma0", 1.0);
  o.seed = static_cast<std::uint64_t>(args.getInt("seed", 2026));
  return noise::NoisyFunction(dim, lookupFunction(fn), o);
}

/// Initial simplex shared by `optimize` and `serve`: explicit --start
/// corner, or random in --box lo,hi (seeded, so the master is
/// deterministic for a given command line).
std::vector<core::Point> initialSimplexFrom(const Args& args, std::size_t dim) {
  if (args.has("start")) {
    const auto corner = args.getDoubleList("start", {});
    if (corner.size() != dim) throw ArgError("--start must have --dim coordinates");
    return core::axisSimplexPoints(corner, 1.0);
  }
  const auto box = args.getDoubleList("box", {-5.0, 5.0});
  if (box.size() != 2 || !(box[0] < box[1])) throw ArgError("--box expects lo,hi");
  noise::RngStream rng(static_cast<std::uint64_t>(args.getInt("seed", 2026)), 7);
  return core::randomSimplexPoints(dim, box[0], box[1], rng);
}

core::TerminationCriteria terminationFrom(const Args& args) {
  core::TerminationCriteria t;
  t.tolerance = args.getDouble("tolerance", 1e-4);
  t.maxIterations = args.getInt("max-iterations", 1000);
  t.maxSamples = args.getInt("max-samples", 1'000'000);
  t.maxTime = args.getDouble("max-time", 1e9);
  return t;
}

/// Evaluation-pipeline knobs shared by `optimize`, `water` and `serve`:
/// `--shard-min-samples N` splits any sampling batch bigger than N across
/// the live workers, `--speculate` prefetches the likely next round while
/// the current one is in flight.  Both only take effect when a sampling
/// backend with an async path is attached (the MW / TCP deployments);
/// serial runs ignore them.
void applyPipelineKnobs(const Args& args, core::CommonOptions& common) {
  const auto shardMin = args.getInt("shard-min-samples", 0);
  if (shardMin < 0) throw ArgError("--shard-min-samples must be >= 0");
  common.sampling.shardMinSamples = shardMin;
  common.sampling.speculate = args.getBool("speculate", false);
}

/// `--isa scalar|sse4|avx2|neon` pins the SIMD dispatch level for this
/// process (optimize, water, md, serve, worker).  Without the flag the
/// widest ISA the CPU supports is used (or SFOPT_ISA when set).  An
/// unknown or unsupported name is a usage error listing the host's
/// options.
void applyIsaFlag(const Args& args) {
  if (!args.has("isa")) return;
  try {
    simd::setActiveIsaByName(args.requireString("isa"));
  } catch (const std::invalid_argument& e) {
    throw ArgError(e.what());
  }
}

/// Simplex algorithm selection shared by `optimize` and `serve`; the
/// caller layers telemetry / checkpointing onto `common` afterwards.
mw::AlgorithmOptions simplexOptionsFrom(const Args& args, const std::string& algo,
                                        const core::TerminationCriteria& term,
                                        bool wantTrace) {
  mw::AlgorithmOptions options;
  if (algo == "det") {
    core::DetOptions o;
    o.common.termination = term;
    o.common.recordTrace = wantTrace;
    options = o;
  } else if (algo == "mn") {
    core::MaxNoiseOptions o;
    o.k = args.getDouble("k", 2.0);
    o.common.termination = term;
    o.common.recordTrace = wantTrace;
    options = o;
  } else if (algo == "anderson") {
    core::AndersonOptions o;
    o.k1 = args.getDouble("k1", 1.0);
    o.k2 = args.getDouble("k2", 0.0);
    o.common.termination = term;
    o.common.recordTrace = wantTrace;
    options = o;
  } else if (algo == "pc" || algo == "pcmn") {
    core::PCOptions o;
    o.k = args.getDouble("k", 1.0);
    o.maxNoiseGate = algo == "pcmn";
    o.common.termination = term;
    o.common.recordTrace = wantTrace;
    options = o;
  } else {
    throw ArgError("unknown algorithm '" + algo +
                   "' (try det, mn, anderson, pc, pcmn, pso, sa)");
  }
  std::visit([&](auto& o) { applyPipelineKnobs(args, o.common); }, options);
  return options;
}

void printResult(std::ostream& out, const core::OptimizationResult& res) {
  out << "stopped:  " << toString(res.reason) << " after " << res.iterations << " steps\n";
  out << "best:     " << core::toString(res.best, 6) << "\n";
  out << "estimate: " << res.bestEstimate;
  if (res.bestTrue) out << "   (true value " << *res.bestTrue << ")";
  out << "\n";
  out << "effort:   " << res.totalSamples << " samples, " << res.elapsedTime
      << " simulated seconds\n";
  out << "moves:    " << res.counters.reflections << " refl, " << res.counters.expansions
      << " exp, " << res.counters.contractions << " contr, " << res.counters.collapses
      << " collapses\n";
}

/// CLI-side observability wiring for `--telemetry-out <file.jsonl>`: opens
/// the JSONL sink (`--telemetry-append` accumulates runs into one file),
/// hosts the Telemetry spine the command threads through its layers, and
/// opens a `cli.<command>` root span.  finish() dumps every registered
/// metric as a structured event, closes the span, and reports the file.
/// `--telemetry-flush S` flushes the sink at least every S seconds (0 =
/// every event) so a crashed or killed process still leaves a usable
/// trace file behind.
struct CliTelemetry {
  std::unique_ptr<telemetry::JsonlSink> jsonl;
  std::unique_ptr<telemetry::Telemetry> spine;
  std::uint64_t rootSpan = 0;
  std::string path;

  static CliTelemetry open(const Args& args, const std::string& command) {
    CliTelemetry t;
    if (!args.has("telemetry-out")) return t;
    t.path = args.requireString("telemetry-out");
    t.jsonl = std::make_unique<telemetry::JsonlSink>(t.path,
                                                     args.getBool("telemetry-append", false));
    if (args.has("telemetry-flush")) {
      const double interval = args.getDouble("telemetry-flush", 0.0);
      if (interval < 0.0) throw ArgError("--telemetry-flush must be >= 0 seconds");
      t.jsonl->setFlushIntervalSeconds(interval);
    }
    t.spine = std::make_unique<telemetry::Telemetry>(*t.jsonl);
    t.rootSpan = t.spine->tracer().begin("cli." + command);
    return t;
  }

  [[nodiscard]] telemetry::Telemetry* get() const noexcept { return spine.get(); }

  void finish(std::ostream& out) {
    if (!spine) return;
    simd::publishTelemetry(*spine);
    (void)telemetry::writeMetricEvents(spine->metrics(), *jsonl, spine->tracer().now());
    spine->tracer().end(rootSpan);
    jsonl->flush();
    out << "telemetry: " << jsonl->eventsWritten() << " events -> " << path << "\n";
  }
};

/// End-of-run fleet-health table for `sfopt serve`, built from the
/// telemetry snapshots workers piggyback on their heartbeat cadence.
/// Silent when no worker ever shipped one (workers only send snapshots
/// once their CLI installs a stats provider).
void printFleetTable(std::ostream& out, const std::vector<net::FleetHealth>& fleet) {
  if (std::none_of(fleet.begin(), fleet.end(),
                   [](const net::FleetHealth& h) { return h.seen; })) {
    return;
  }
  out << "fleet:    rank    tasks   fail  exec-ewma        rtt  clock-off  queue\n";
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const net::FleetHealth& h = fleet[i];
    if (!h.seen) continue;
    out << "          r" << (i + 1);
    out.width(9 - std::to_string(i + 1).size());
    out << "" << std::right;
    out.width(8);
    out << h.tasksExecuted;
    out.width(7);
    out << h.tasksFailed << "  ";
    out.width(9);
    out << h.executeEwmaSeconds << "  ";
    out.width(9);
    if (h.rttSeconds >= 0.0) {
      out << h.rttSeconds;
    } else {
      out << "-";
    }
    out << "  ";
    out.width(9);
    out << h.clockOffsetSeconds;
    out.width(7);
    out << h.queueDepth << "\n";
  }
}

/// SIGINT/SIGTERM flag for `serve --daemon`: the handler only sets the
/// flag; the accept loop notices it within one poll interval and drains.
std::atomic<bool> gServeStop{false};

extern "C" void serveStopHandler(int) { gServeStop.store(true); }

/// Build the wire JobSpec for `sfopt submit` from the same flags (and the
/// same defaults, including the seeded random simplex) `optimize` uses, so
/// a submitted job's result diffs bitwise against the equivalent solo run.
service::JobSpec jobSpecFrom(const Args& args) {
  service::JobSpec spec;
  const auto dim = args.getInt("dim", 4);
  if (dim < 2) throw ArgError("--dim must be >= 2");
  spec.objective.function = args.getString("function", "rosenbrock");
  spec.objective.dim = dim;
  spec.objective.sigma0 = args.getDouble("sigma0", 1.0);
  spec.objective.seed = static_cast<std::uint64_t>(args.getInt("seed", 2026));
  spec.objective.clients = args.getInt("clients", 1);
  spec.algorithm = args.getString("algorithm", "pc");
  spec.k = args.getDouble("k", spec.algorithm == "mn" ? 2.0 : 1.0);
  spec.k1 = args.getDouble("k1", 1.0);
  spec.k2 = args.getDouble("k2", 0.0);
  spec.termination = terminationFrom(args);
  spec.shardMinSamples = args.getInt("shard-min-samples", 0);
  spec.speculate = args.getBool("speculate", false);
  spec.priority = args.getInt("priority", 1);
  spec.initial = initialSimplexFrom(args, static_cast<std::size_t>(dim));
  try {
    spec.validate();
  } catch (const std::exception& e) {
    throw ArgError(e.what());
  }
  return spec;
}

/// The multi-tenant daemon behind `sfopt serve --daemon`: one shared
/// worker fleet, many concurrent jobs submitted over the same TCP port.
int runServeDaemon(const Args& args, std::ostream& out) {
  const auto port = args.getInt("port", 7600);
  if (port < 0 || port > 65535) throw ArgError("--port must be in [0, 65535]");

  service::ServiceOptions svcOpts;
  svcOpts.maxConcurrentJobs = static_cast<int>(args.getInt("max-concurrent", 2));
  svcOpts.maxQueuedJobs = static_cast<int>(args.getInt("max-queued", 8));
  if (svcOpts.maxConcurrentJobs < 1) throw ArgError("--max-concurrent must be >= 1");
  if (svcOpts.maxQueuedJobs < 0) throw ArgError("--max-queued must be >= 0");
  const auto maxPending = args.getInt("max-pending-shards", 1024);
  if (maxPending < 1) throw ArgError("--max-pending-shards must be >= 1");
  svcOpts.maxPendingShards = static_cast<std::size_t>(maxPending);
  svcOpts.maxJobs = args.getInt("max-jobs", 0);
  svcOpts.recvTimeoutSeconds = args.getDouble("recv-timeout", 300.0);
  svcOpts.stateDir = args.getString("state-dir", "");
  svcOpts.checkpointInterval = args.getInt("checkpoint-interval", 25);
  if (svcOpts.checkpointInterval < 0) throw ArgError("--checkpoint-interval must be >= 0");
  svcOpts.resultRetention = args.getInt("result-retention", 0);
  if (svcOpts.resultRetention < 0) throw ArgError("--result-retention must be >= 0");
  svcOpts.speculativeFactor = args.getDouble("speculative-factor", 0.0);
  if (svcOpts.speculativeFactor < 0.0) throw ArgError("--speculative-factor must be >= 0");
  svcOpts.log = &out;

  CliTelemetry telemetrySession = CliTelemetry::open(args, "serve");
  svcOpts.telemetry = telemetrySession.get();

  net::TcpCommWorld::Options netOpts;
  netOpts.telemetry = telemetrySession.get();
  netOpts.heartbeatIntervalSeconds = args.getDouble("heartbeat-interval", 2.0);
  netOpts.heartbeatTimeoutSeconds = args.getDouble("heartbeat-timeout", 10.0);
  net::TcpCommWorld comm(static_cast<std::uint16_t>(port), netOpts);

  // Service workers need no objective up front — every task is
  // self-describing — so the greeting carries only the schema name.
  mw::MessageBuffer cfg;
  cfg.pack(std::string("service-v1"));
  comm.setGreeting(mw::kTagConfig, std::move(cfg));

  if (args.has("workers")) {
    const int workers = static_cast<int>(args.getInt("workers", 1));
    if (workers < 1) throw ArgError("--workers must be >= 1");
    out << "listening on 0.0.0.0:" << comm.port() << " (protocol v"
        << net::kProtocolVersion << "), waiting for " << workers << " worker(s)\n"
        << std::flush;
    comm.waitForWorkers(workers, args.getDouble("wait-timeout", 120.0));
  } else {
    out << "listening on 0.0.0.0:" << comm.port() << " (protocol v"
        << net::kProtocolVersion << ")\n"
        << std::flush;
  }
  out << "daemon:   up to " << svcOpts.maxConcurrentJobs << " concurrent job(s), "
      << svcOpts.maxQueuedJobs << " queued";
  if (svcOpts.maxJobs > 0) out << ", exiting after " << svcOpts.maxJobs << " job(s)";
  out << "\n" << std::flush;
  if (!svcOpts.stateDir.empty()) {
    out << "durable:  journaling to " << svcOpts.stateDir << ", checkpoint every "
        << svcOpts.checkpointInterval << " iteration(s)\n"
        << std::flush;
  }

  gServeStop.store(false);
  std::signal(SIGINT, &serveStopHandler);
  std::signal(SIGTERM, &serveStopHandler);
  service::OptimizationService svc(comm, svcOpts);
  const std::int64_t completed = svc.run(gServeStop);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  out << "daemon:   " << completed << " job(s) reached a terminal state\n";
  printFleetTable(out, comm.fleetHealth());
  telemetrySession.finish(out);
  return 0;
}

/// Render a status/submit/cancel reply; shared by the three client
/// commands so retryable rejections always read the same way.
void printStatusReply(std::ostream& out, const service::StatusReply& reply) {
  out << "job " << reply.jobId << ": " << service::toString(reply.state);
  if (!reply.detail.empty()) out << " - " << reply.detail;
  if (reply.retryable) out << " (retryable)";
  out << "\n";
  out << "load:     " << reply.queued << " queued, " << reply.running << " running\n";
}

}  // namespace

int runOptimizeCommand(const Args& args, std::ostream& out) {
  applyIsaFlag(args);
  const auto dim = static_cast<std::size_t>(args.getInt("dim", 4));
  if (dim < 2) throw ArgError("--dim must be >= 2");
  const auto objective = makeObjective(args, dim);
  const std::string algo = args.getString("algorithm", "pc");

  const std::vector<core::Point> start = initialSimplexFrom(args, dim);

  const auto term = terminationFrom(args);
  const bool wantTrace = args.has("trace");
  CliTelemetry telemetrySession = CliTelemetry::open(args, "optimize");
  telemetry::Telemetry* const tel = telemetrySession.get();

  // Checkpoint/resume plumbing (simplex algorithms only).
  core::SimplexCheckpoint resumeState;
  const bool wantResume = args.has("resume");
  const bool wantCheckpoint = args.has("checkpoint");
  if ((wantResume || wantCheckpoint) && (algo == "pso" || algo == "sa")) {
    throw ArgError("--checkpoint/--resume support the simplex algorithms only");
  }
  if (wantResume) resumeState = core::loadCheckpoint(args.requireString("resume"));
  auto applyCheckpointing = [&](core::CommonOptions& common) {
    common.telemetry = tel;
    if (wantResume) common.resumeFrom = &resumeState;
    if (wantCheckpoint) {
      const std::string path = args.requireString("checkpoint");
      common.checkpointEvery = args.getInt("checkpoint-every", 10);
      common.checkpointSink = [path](const core::SimplexCheckpoint& cp) {
        core::saveCheckpoint(path, cp);
      };
    }
  };

  core::OptimizationResult res;
  if (algo == "pso") {
    if (wantResume || wantCheckpoint) {
      throw ArgError("--checkpoint/--resume support the simplex algorithms only");
    }
    core::PsoOptions o;
    o.particles = static_cast<int>(args.getInt("particles", 20));
    o.termination = term;
    o.resample.maxRoundsPerComparison = 8;
    o.recordTrace = wantTrace;
    res = core::runParticleSwarm(objective, o);
  } else if (algo == "sa") {
    if (wantResume || wantCheckpoint) {
      throw ArgError("--checkpoint/--resume support the simplex algorithms only");
    }
    core::AnnealingOptions o;
    o.initialTemperature = args.getDouble("temperature", 10.0);
    o.termination = term;
    res = core::runSimulatedAnnealing(objective, start.front(), o);
  } else {
    mw::AlgorithmOptions options = simplexOptionsFrom(args, algo, term, wantTrace);
    std::visit([&](auto& o) { applyCheckpointing(o.common); }, options);
    if (args.getBool("mw", false)) {
      mw::MWRunConfig cfg;
      cfg.workers = static_cast<int>(args.getInt("workers", 0));
      cfg.clientsPerWorker = static_cast<int>(args.getInt("clients", 1));
      cfg.telemetry = tel;
      const auto run = mw::runSimplexOverMW(objective, start, options, cfg);
      out << "master-worker deployment: " << run.allocation.workers() << " workers, "
          << run.allocation.totalCores() << " cores (Table 3.3 rule), " << run.messagesSent
          << " messages\n";
      res = run.optimization;
    } else {
      res = std::visit(
          [&](const auto& o) {
            using T = std::decay_t<decltype(o)>;
            if constexpr (std::is_same_v<T, core::DetOptions>) {
              return core::runDeterministic(objective, start, o);
            } else if constexpr (std::is_same_v<T, core::MaxNoiseOptions>) {
              return core::runMaxNoise(objective, start, o);
            } else if constexpr (std::is_same_v<T, core::AndersonOptions>) {
              return core::runAnderson(objective, start, o);
            } else {
              return core::runPointToPoint(objective, start, o);
            }
          },
          options);
    }
  }
  printResult(out, res);
  if (wantTrace) {
    const std::string path = args.requireString("trace");
    core::saveTraceCsv(path, res.trace);
    out << "trace:    " << res.trace.size() << " rows -> " << path << "\n";
  }
  telemetrySession.finish(out);
  return 0;
}

int runWaterCommand(const Args& args, std::ostream& out) {
  applyIsaFlag(args);
  water::WaterCostObjective::Options objOpts;
  objOpts.sigma0 = args.getDouble("sigma0", 0.2);
  const water::WaterCostObjective objective(objOpts);
  const auto rows = water::table34InitialPoints();
  const std::vector<core::Point> start(rows.begin(), rows.begin() + 4);

  const std::string algo = args.getString("algorithm", "pcmn");
  core::TerminationCriteria term = terminationFrom(args);
  if (!args.has("max-samples")) term.maxSamples = 4'000'000;
  if (!args.has("tolerance")) term.tolerance = 1e-3;

  CliTelemetry telemetrySession = CliTelemetry::open(args, "water");

  core::OptimizationResult res;
  if (algo == "mn") {
    core::MaxNoiseOptions o;
    o.common.termination = term;
    o.common.telemetry = telemetrySession.get();
    applyPipelineKnobs(args, o.common);
    res = core::runMaxNoise(objective, start, o);
  } else if (algo == "pc" || algo == "pcmn") {
    core::PCOptions o;
    o.maxNoiseGate = algo == "pcmn";
    o.common.termination = term;
    o.common.telemetry = telemetrySession.get();
    applyPipelineKnobs(args, o.common);
    res = core::runPointToPoint(objective, start, o);
  } else {
    throw ArgError("water supports --algorithm mn, pc or pcmn");
  }

  const auto tip4p = md::tip4pPublished();
  out << "optimized parameters (vs published TIP4P):\n";
  out << "  epsilon " << res.best[0] << "  (" << tip4p.epsilon << ")\n";
  out << "  sigma   " << res.best[1] << "  (" << tip4p.sigma << ")\n";
  out << "  qH      " << res.best[2] << "  (" << tip4p.qH << ")\n";
  out << "cost: " << *objective.trueValue(res.best) << "  vs TIP4P "
      << *objective.trueValue(std::vector<double>{tip4p.epsilon, tip4p.sigma, tip4p.qH})
      << "\n";
  printResult(out, res);
  telemetrySession.finish(out);
  return 0;
}

int runProbeCommand(const Args& args, std::ostream& out) {
  const auto dim = static_cast<std::size_t>(args.getInt("dim", 4));
  const auto objective = makeObjective(args, dim);
  const auto point = args.getDoubleList("point", core::Point(dim, 0.0));
  if (point.size() != dim) throw ArgError("--point must have --dim coordinates");
  const auto samples = args.getInt("samples", 1000);
  const auto probe = core::probeNoise(objective, point, samples);
  out << "point:        " << core::toString(point, 4) << "\n";
  out << "mean:         " << probe.meanEstimate << " +/- " << probe.standardError << "\n";
  out << "sigma0:       " << probe.sigma0Estimate << " (declared "
      << objective.noiseScale(point).value_or(0.0) << ")\n";
  out << "sampled time: " << probe.sampledTime << " s (" << probe.samples << " samples)\n";
  return 0;
}

int runMdCommand(const Args& args, std::ostream& out) {
  applyIsaFlag(args);
  md::SimulationConfig cfg;
  cfg.molecules = static_cast<int>(args.getInt("molecules", 64));
  cfg.temperatureK = args.getDouble("temperature", 298.0);
  cfg.densityGramsPerCc = args.getDouble("density", 0.997);
  cfg.dtPs = args.getDouble("dt", 0.0005);
  cfg.cutoff = args.getDouble("cutoff", 4.0);
  cfg.equilibrationSteps = static_cast<int>(args.getInt("equilibration", 200));
  cfg.productionSteps = static_cast<int>(args.getInt("production", 400));
  cfg.sampleEvery = static_cast<int>(args.getInt("sample-every", 10));
  cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 12345));
  cfg.forceThreads = static_cast<int>(args.getInt("force-threads", 1));
  if (cfg.molecules < 1) throw ArgError("--molecules must be >= 1");
  if (cfg.forceThreads < 1) throw ArgError("--force-threads must be >= 1");

  md::WaterParameters params = md::tip4pPublished();
  params.epsilon = args.getDouble("epsilon", params.epsilon);
  params.sigma = args.getDouble("sigma", params.sigma);
  params.qH = args.getDouble("qh", params.qH);

  CliTelemetry telemetrySession = CliTelemetry::open(args, "md");
  cfg.telemetry = telemetrySession.get();

  const md::WaterObservables obs = md::simulateWater(params, cfg);

  if (args.getBool("json", false)) {
    // Stable machine-readable report: one flat JSON object per run, in the
    // same wire form as the telemetry JSONL (parseJsonLine round-trips it).
    telemetry::Event e;
    e.type = "md_report";
    e.name = "md";
    e.numFields = {
        {"molecules", static_cast<double>(cfg.molecules)},
        {"equilibration_steps", static_cast<double>(cfg.equilibrationSteps)},
        {"production_steps", static_cast<double>(cfg.productionSteps)},
        {"dt_ps", cfg.dtPs},
        {"potential_per_molecule_kcal", obs.potentialPerMoleculeKcal},
        {"potential_standard_error", obs.potentialStandardError},
        {"pressure_atm", obs.pressureAtm},
        {"temperature_k", obs.temperatureK},
        {"diffusion_cm2_per_s", obs.diffusionCm2PerS},
        {"nve_drift_kcal_per_ps", obs.nveDriftKcalPerPs},
        {"production_frames", static_cast<double>(obs.productionFrames)},
        {"force_evaluations", static_cast<double>(obs.perf.forceEvaluations)},
        {"pairs_per_evaluation", obs.perf.pairsPerEvaluation()},
        {"neighbor_rebuilds", static_cast<double>(obs.perf.neighborRebuilds)},
        {"force_threads", static_cast<double>(obs.perf.forceThreads)},
        {"cell_list_used", obs.perf.cellListUsed ? 1.0 : 0.0},
    };
    out << telemetry::toJsonLine(e) << "\n";
    telemetrySession.finish(out);
    return 0;
  }

  out << "protocol:     " << cfg.molecules << " molecules, " << cfg.equilibrationSteps
      << " NVT + " << cfg.productionSteps << " NVE steps, dt " << cfg.dtPs << " ps\n";
  out << "<U>/molecule: " << obs.potentialPerMoleculeKcal << " kcal/mol (+/- "
      << obs.potentialStandardError << ")\n";
  out << "<P>:          " << obs.pressureAtm << " atm\n";
  out << "<T>:          " << obs.temperatureK << " K\n";
  out << "D:            " << obs.diffusionCm2PerS << " cm^2/s\n";
  out << "NVE drift:    " << obs.nveDriftKcalPerPs << " kcal/mol/ps\n";
  const md::MdPerfCounters& perf = obs.perf;
  out << "force path:   " << perf.forceThreads << " thread(s), "
      << (perf.cellListUsed ? "cell-list" : "brute-force") << " neighbor build";
  if (perf.cellListUsed) {
    out << " (" << perf.cellsPerDim << "^3 cells, avg occupancy " << perf.avgCellOccupancy
        << ")";
  }
  out << "\n";
  out << "perf:         " << perf.forceEvaluations << " force evals, "
      << perf.pairsPerEvaluation() << " pairs/eval, " << perf.neighborRebuilds
      << " rebuilds (max drift " << perf.maxDriftSeen << " A), "
      << perf.forceSeconds << " s in forces\n";
  telemetrySession.finish(out);
  return 0;
}

int runServeCommand(const Args& args, std::ostream& out) {
  applyIsaFlag(args);
  if (args.getBool("daemon", false)) return runServeDaemon(args, out);
  const auto dim = static_cast<std::size_t>(args.getInt("dim", 4));
  if (dim < 2) throw ArgError("--dim must be >= 2");
  const int workers = static_cast<int>(args.getInt("workers", 2));
  if (workers < 1) throw ArgError("--workers must be >= 1");
  const int clients = static_cast<int>(args.getInt("clients", 1));
  if (clients < 1) throw ArgError("--clients must be >= 1");
  const auto port = args.getInt("port", 7600);
  if (port < 0 || port > 65535) throw ArgError("--port must be in [0, 65535]");
  const std::string fn = args.getString("function", "rosenbrock");
  const auto objective = makeObjective(args, dim);
  const std::string algo = args.getString("algorithm", "pc");
  mw::AlgorithmOptions options = simplexOptionsFrom(args, algo, terminationFrom(args), false);
  const auto start = initialSimplexFrom(args, dim);

  CliTelemetry telemetrySession = CliTelemetry::open(args, "serve");
  telemetry::Telemetry* const tel = telemetrySession.get();
  std::visit([&](auto& o) { o.common.telemetry = tel; }, options);

  net::TcpCommWorld::Options netOpts;
  netOpts.telemetry = tel;
  netOpts.heartbeatIntervalSeconds = args.getDouble("heartbeat-interval", 2.0);
  netOpts.heartbeatTimeoutSeconds = args.getDouble("heartbeat-timeout", 10.0);
  net::TcpCommWorld comm(static_cast<std::uint16_t>(port), netOpts);

  // Greeting: delivered to every worker right after its handshake
  // (including late joiners and post-crash rejoins), so workers are
  // configured by the master, not by their own command lines.
  mw::MessageBuffer cfg;
  cfg.pack(std::string("noisy-v1"));
  cfg.pack(fn);
  cfg.pack(static_cast<std::int64_t>(dim));
  cfg.pack(args.getDouble("sigma0", 1.0));
  cfg.pack(static_cast<std::uint64_t>(args.getInt("seed", 2026)));
  cfg.pack(static_cast<std::int64_t>(clients));
  comm.setGreeting(mw::kTagConfig, std::move(cfg));

  out << "listening on 0.0.0.0:" << comm.port() << " (protocol v" << net::kProtocolVersion
      << "), waiting for " << workers << " worker(s)\n"
      << std::flush;
  comm.waitForWorkers(workers, args.getDouble("wait-timeout", 120.0));
  out << "workers:  " << comm.liveWorkers() << " connected\n" << std::flush;

  mw::MWRunConfig runCfg;
  runCfg.clientsPerWorker = clients;
  runCfg.telemetry = tel;
  runCfg.recvTimeoutSeconds = args.getDouble("recv-timeout", 300.0);
  const auto run = mw::runSimplexOverTransport(objective, start, options, comm, runCfg);
  out << "distributed deployment: " << comm.size() - 1 << " worker rank(s), "
      << run.messagesSent << " messages, " << run.tasksRequeued << " requeued\n";
  printFleetTable(out, comm.fleetHealth());
  printResult(out, run.optimization);
  telemetrySession.finish(out);
  return 0;
}

int runWorkerCommand(const Args& args, std::ostream& out) {
  applyIsaFlag(args);
  const std::string host = args.getString("host", "127.0.0.1");
  const auto port = args.getInt("port", 7600);
  if (port < 1 || port > 65535) throw ArgError("--port must be in [1, 65535]");
  const int attempts = static_cast<int>(args.getInt("connect-attempts", 10));
  if (attempts < 1) throw ArgError("--connect-attempts must be >= 1");
  const bool reconnect = args.getBool("reconnect", true);
  const double configTimeout = args.getDouble("config-timeout", 30.0);

  CliTelemetry telemetrySession = CliTelemetry::open(args, "worker");
  net::TcpWorkerTransport::Options netOpts;
  netOpts.telemetry = telemetrySession.get();
  netOpts.heartbeatIntervalSeconds = args.getDouble("heartbeat-interval", 2.0);
  // Master-silence deadline: under a one-way partition the connection
  // stays open and our own beats keep "succeeding" into the void, so only
  // this recv deadline (and the matching write deadline inside the
  // transport) gets the worker back into its reconnect loop.
  netOpts.masterTimeoutSeconds = args.getDouble("master-timeout", 30.0);
  if (netOpts.masterTimeoutSeconds < 0.0) throw ArgError("--master-timeout must be >= 0");

  // Reconnect jitter is seeded by the last rank this worker held (0 on the
  // very first dial), so a restarted fleet's workers spread their retries
  // deterministically instead of thundering the master's accept loop.
  std::uint64_t jitterSeed = 0;
  for (;;) {
    const auto transport = net::connectWithBackoff(
        host, static_cast<std::uint16_t>(port), attempts, 0.2, netOpts, jitterSeed);
    const mw::Rank rank = transport->rank();
    jitterSeed = static_cast<std::uint64_t>(rank);
    if (telemetrySession.get() != nullptr) {
      // Partition the span-id space by rank so this worker's ids never
      // collide with the master's (or another worker's) when `sfopt trace`
      // merges the JSONL files.  2^40 spans of headroom per rank keeps ids
      // below 2^53, the JSON double-precision ceiling.
      telemetrySession.get()->tracer().seedIds(
          (static_cast<std::uint64_t>(rank) << 40) + 1);
    }
    out << "connected to " << host << ":" << port << " as rank " << rank << "\n" << std::flush;
    try {
      // The master's greeting tells this worker what to compute; a worker
      // needs no objective flags of its own.
      auto cfgMsg = transport->recvFor(rank, configTimeout, 0, mw::kTagConfig);
      if (!cfgMsg) throw std::runtime_error("sfopt worker: no config greeting from master");
      mw::MessageBuffer& cfg = cfgMsg->payload;
      const std::string schema = cfg.unpackString();
      if (schema == "service-v1") {
        // Multi-tenant daemon: tasks are self-describing (job id +
        // objective spec ride on every one), so there is nothing more to
        // unpack — just serve until shutdown.
        out << "service:  multi-tenant worker (objectives arrive per task)\n"
            << std::flush;
        service::ServiceWorker worker(*transport, rank,
                                      static_cast<int>(args.getInt("job-cache", 4)));
        worker.setTelemetry(telemetrySession.get());
        transport->setStatsProvider([&worker] {
          return net::WorkerStats{worker.tasksExecuted(), worker.tasksFailed(),
                                  worker.executeEwmaSeconds()};
        });
        try {
          worker.run();
        } catch (...) {
          transport->setStatsProvider({});
          throw;
        }
        transport->setStatsProvider({});
        out << "shutdown: " << worker.tasksExecuted() << " task(s) executed, "
            << worker.tasksFailed() << " failed (" << worker.cacheMisses()
            << " objective build(s))\n";
        telemetrySession.finish(out);
        return 0;
      }
      if (schema != "noisy-v1") {
        throw std::runtime_error("sfopt worker: unsupported config schema '" + schema + "'");
      }
      const std::string fn = cfg.unpackString();
      const auto dim = static_cast<std::size_t>(cfg.unpackInt64());
      noise::NoisyFunction::Options objOpts;
      objOpts.sigma0 = cfg.unpackDouble();
      objOpts.seed = cfg.unpackUint64();
      const int clients = static_cast<int>(cfg.unpackInt64());
      const noise::NoisyFunction objective(dim, lookupFunction(fn), objOpts);
      out << "objective: " << fn << " dim " << dim << " sigma0 " << objOpts.sigma0 << ", "
          << clients << " client(s) per vertex server\n"
          << std::flush;

      mw::SamplingWorker worker(*transport, rank, objective, clients);
      worker.setTelemetry(telemetrySession.get());
      // Expose the worker's task counters to the heartbeat thread so every
      // beat ships a fleet snapshot; detach before `worker` dies (the clear
      // is a barrier against an in-flight heartbeat poll).
      transport->setStatsProvider([&worker] {
        return net::WorkerStats{worker.tasksExecuted(), worker.tasksFailed(),
                                worker.executeEwmaSeconds()};
      });
      try {
        worker.run();
      } catch (...) {
        transport->setStatsProvider({});
        throw;
      }
      transport->setStatsProvider({});
      out << "shutdown: " << worker.tasksExecuted() << " task(s) executed, "
          << worker.tasksFailed() << " failed\n";
      telemetrySession.finish(out);
      return 0;
    } catch (const net::ConnectionLost& e) {
      out << "connection lost: " << e.what() << (reconnect ? " - reconnecting" : "") << "\n"
          << std::flush;
      if (!reconnect) {
        telemetrySession.finish(out);
        return 1;
      }
    }
  }
}

int runChaosProxyCommand(const Args& args, std::ostream& out) {
  const auto port = args.getInt("port", 0);
  if (port < 0 || port > 65535) throw ArgError("--port must be in [0, 65535]");
  const std::string targetHost = args.getString("target-host", "127.0.0.1");
  const auto targetPort = args.getInt("target-port", 7600);
  if (targetPort < 1 || targetPort > 65535) {
    throw ArgError("--target-port must be in [1, 65535]");
  }
  const std::string scenario = args.getString("scenario", "none");
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2026));
  const double duration = args.getDouble("duration", 0.0);
  if (duration < 0.0) throw ArgError("--duration must be >= 0");
  net::ChaosSchedule schedule;
  try {
    schedule = net::ChaosSchedule::preset(scenario, seed);
  } catch (const std::invalid_argument& e) {
    throw ArgError(e.what());
  }

  CliTelemetry telemetrySession = CliTelemetry::open(args, "chaosproxy");
  net::ChaosProxy proxy(targetHost, static_cast<std::uint16_t>(targetPort), schedule,
                        telemetrySession.get(), static_cast<std::uint16_t>(port));
  out << "chaos proxy on 0.0.0.0:" << proxy.port() << " -> " << targetHost << ":"
      << targetPort << " scenario=" << scenario << " seed=" << seed << "\n"
      << std::flush;

  gServeStop.store(false);
  std::signal(SIGINT, &serveStopHandler);
  std::signal(SIGTERM, &serveStopHandler);
  const double start = net::monotonicSeconds();
  while (!gServeStop.load()) {
    if (duration > 0.0 && net::monotonicSeconds() - start >= duration) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  proxy.stop();

  const auto c = proxy.counters();
  out << "chaos:    " << c.connectionsAccepted << " connection(s), " << c.framesForwarded
      << " frame(s) forwarded, " << c.framesDropped << " dropped, " << c.framesDuplicated
      << " duplicated, " << c.framesDelayed << " delayed, " << c.partitions
      << " partition(s), " << c.stalls << " stall(s), " << c.heals << " heal(s)\n";
  telemetrySession.finish(out);
  return 0;
}

int runSubmitCommand(const Args& args, std::ostream& out) {
  const std::string host = args.getString("host", "127.0.0.1");
  const auto port = args.getInt("port", 7600);
  if (port < 1 || port > 65535) throw ArgError("--port must be in [1, 65535]");
  const service::JobSpec spec = jobSpecFrom(args);
  const bool detach = args.getBool("detach", false);
  const double waitTimeout = args.getDouble("wait-timeout", 600.0);

  service::ServiceClient client(host, static_cast<std::uint16_t>(port),
                                args.getDouble("connect-timeout", 10.0));
  const service::StatusReply ack = client.submit(spec);
  printStatusReply(out, ack);
  if (ack.state == service::JobState::Rejected) return ack.retryable ? 3 : 2;
  if (detach) return 0;

  const service::ResultReply result = client.waitResult(waitTimeout);
  out << "job " << result.jobId << ": " << service::toString(result.state);
  if (!result.detail.empty()) out << " - " << result.detail;
  out << "\n";
  if (result.state != service::JobState::Done || !result.outcome) return 1;
  printResult(out, result.outcome->toResult());
  return 0;
}

int runStatusCommand(const Args& args, std::ostream& out) {
  const std::string host = args.getString("host", "127.0.0.1");
  const auto port = args.getInt("port", 7600);
  if (port < 1 || port > 65535) throw ArgError("--port must be in [1, 65535]");
  const auto jobId = args.getInt("job", 0);
  if (jobId < 0) throw ArgError("--job must be >= 0 (0 = service summary)");
  service::ServiceClient client(host, static_cast<std::uint16_t>(port),
                                args.getDouble("connect-timeout", 10.0));
  const service::StatusReply reply =
      client.status(static_cast<std::uint64_t>(jobId));
  if (jobId == 0) {
    out << "service:  " << reply.detail << "\n";
    return 0;
  }
  printStatusReply(out, reply);
  if (args.getBool("result", false) && reply.state != service::JobState::Unknown) {
    // Pull the stored outcome — works for jobs finished before a daemon
    // restart too, since the durable journal restores terminal results.
    const service::ResultReply result =
        client.fetchResult(static_cast<std::uint64_t>(jobId));
    if (!result.detail.empty()) out << "result:   " << result.detail << "\n";
    if (result.state != service::JobState::Done || !result.outcome) return 1;
    printResult(out, result.outcome->toResult());
  }
  return reply.state == service::JobState::Unknown ? 1 : 0;
}

int runCancelCommand(const Args& args, std::ostream& out) {
  const std::string host = args.getString("host", "127.0.0.1");
  const auto port = args.getInt("port", 7600);
  if (port < 1 || port > 65535) throw ArgError("--port must be in [1, 65535]");
  if (!args.has("job")) throw ArgError("cancel needs --job <id>");
  const auto jobId = args.getInt("job", 0);
  if (jobId < 1) throw ArgError("--job must be >= 1");
  service::ServiceClient client(host, static_cast<std::uint16_t>(port),
                                args.getDouble("connect-timeout", 10.0));
  const service::StatusReply reply =
      client.cancel(static_cast<std::uint64_t>(jobId));
  printStatusReply(out, reply);
  return reply.state == service::JobState::Unknown ? 1 : 0;
}

int runMetricsCommand(const Args& args, std::ostream& out) {
  const std::string path = args.has("in") ? args.requireString("in")
                           : !args.positional().empty()
                               ? args.positional().front()
                               : throw ArgError("metrics needs a JSONL file: sfopt metrics "
                                                "<file> (or --in <file>)");
  std::vector<telemetry::Event> events;
  try {
    events = telemetry::readJsonlEvents(path);
  } catch (const std::exception& e) {
    throw ArgError(e.what());
  }

  // Span roll-up: count / total / mean / max duration per span name.
  struct SpanAgg {
    std::int64_t count = 0;
    double total = 0.0;
    double max = 0.0;
  };
  std::map<std::string, SpanAgg> spans;
  std::vector<const telemetry::Event*> metricEvents;
  for (const telemetry::Event& e : events) {
    if (e.type == "span" && e.duration >= 0.0) {
      SpanAgg& a = spans[e.name];
      ++a.count;
      a.total += e.duration;
      a.max = std::max(a.max, e.duration);
    } else if (e.type == "metric") {
      metricEvents.push_back(&e);
    }
  }

  out << events.size() << " events in " << path << "\n";

  if (!spans.empty()) {
    out << "\nspans (seconds):\n";
    out << "  name                                count        total         mean          max\n";
    for (const auto& [name, a] : spans) {
      out << "  ";
      out.width(34);
      out << std::left << name << std::right;
      out.width(7);
      out << a.count << "  ";
      out.width(11);
      out << a.total << "  ";
      out.width(11);
      out << a.total / static_cast<double>(a.count) << "  ";
      out.width(11);
      out << a.max << "\n";
    }
  }

  // The file may hold several exports (--telemetry-append); keep the
  // final value per name, which is the cumulative registry state.
  std::map<std::string, const telemetry::Event*> last;
  for (const telemetry::Event* e : metricEvents) last[e->name] = e;

  if (!metricEvents.empty()) {
    out << "\nmetrics (last export wins):\n";
    for (const auto& [name, e] : last) {
      out << "  ";
      out.width(34);
      out << std::left << name << std::right;
      const auto kind = e->str("kind").value_or("?");
      if (kind == "histogram") {
        out << " count " << e->num("count").value_or(0.0) << "  sum "
            << e->num("sum").value_or(0.0);
        if (const auto mean = e->num("mean")) out << "  mean " << *mean;
      } else {
        out << " " << e->num("value").value_or(0.0);
      }
      out << "\n";
    }
  }

  // Fleet table: the per-rank `fleet.r<N>.<field>` gauges the master
  // publishes from the telemetry snapshots workers ship on heartbeats.
  std::map<int, std::map<std::string, double>> fleet;
  for (const auto& [name, e] : last) {
    if (name.rfind("fleet.r", 0) != 0) continue;
    const auto dot = name.find('.', 7);
    if (dot == std::string::npos) continue;
    int rank = 0;
    try {
      rank = std::stoi(name.substr(7, dot - 7));
    } catch (const std::exception&) {
      continue;
    }
    fleet[rank][name.substr(dot + 1)] = e->num("value").value_or(0.0);
  }
  if (!fleet.empty()) {
    out << "\nfleet (final snapshot per rank):\n";
    out << "  rank    tasks   fail  exec-ewma        rtt  clock-off  queue\n";
    for (const auto& [rank, fields] : fleet) {
      const auto field = [&](const char* key, double fallback = 0.0) {
        const auto it = fields.find(key);
        return it != fields.end() ? it->second : fallback;
      };
      out << "  r" << rank;
      out.width(11 - std::to_string(rank).size());
      out << "" << std::right;
      out.width(5);
      out << static_cast<std::int64_t>(field("tasks_executed"));
      out.width(7);
      out << static_cast<std::int64_t>(field("tasks_failed")) << "  ";
      out.width(9);
      out << field("execute_ewma_seconds") << "  ";
      out.width(9);
      out << field("rtt_seconds", -1.0) << "  ";
      out.width(9);
      out << field("clock_offset_seconds");
      out.width(7);
      out << static_cast<std::int64_t>(field("queue_depth")) << "\n";
    }
  }

  // Layer coverage: which instrumented layers contributed events.
  const char* const layers[] = {"engine.", "mw.",    "net.",   "md.",    "cli.",
                                "eval.",   "simd.",  "fleet.", "shard.", "worker.",
                                "service."};
  out << "\nlayers:";
  for (const char* prefix : layers) {
    const bool covered = std::any_of(events.begin(), events.end(), [&](const auto& e) {
      return e.name.rfind(prefix, 0) == 0;
    });
    out << " " << std::string_view(prefix).substr(0, std::string_view(prefix).size() - 1)
        << (covered ? "[x]" : "[ ]");
  }
  out << "\n";
  return 0;
}

int runTraceCommand(const Args& args, std::ostream& out) {
  if (args.positional().empty()) {
    throw ArgError(
        "trace needs the run's JSONL captures: sfopt trace <master.jsonl> "
        "[worker.jsonl ...] [--verify] [--top N]");
  }
  std::vector<telemetry::Event> events;
  for (const std::string& path : args.positional()) {
    try {
      auto more = telemetry::readJsonlEvents(path);
      events.insert(events.end(), std::make_move_iterator(more.begin()),
                    std::make_move_iterator(more.end()));
    } catch (const std::exception& e) {
      throw ArgError(e.what());
    }
  }
  if (events.empty()) {
    out << "error:    no telemetry events in the given capture(s) - was the run\n"
        << "          started with --telemetry-out, and did it get far enough to\n"
        << "          flush? (--telemetry-flush S makes partial runs analyzable)\n";
    return 1;
  }
  const int top = static_cast<int>(args.getInt("top", 5));
  if (top < 0) throw ArgError("--top must be >= 0");
  const telemetry::TraceReport report = telemetry::analyzeTraceEvents(events, top);

  out << events.size() << " events from " << args.positional().size() << " file(s)\n";
  out << "shards:   " << report.traces << " traced, " << report.dispatched
      << " dispatch(es), " << report.requeues << " requeued, " << report.folded
      << " folded, " << report.discarded << " discarded, " << report.failed
      << " failed, " << report.abandoned << " abandoned\n";

  // Multi-job (service) captures: shard tickets are namespaced by job id,
  // so the merged file splits cleanly into per-job groups.
  if (report.multiJob()) {
    out << "jobs:     job       traces   folded  discard     fail  requeue  outcome\n";
    for (const telemetry::TraceNamespaceReport& ns : report.namespaces) {
      out << "          ";
      std::string label = ns.ns == 0 ? "legacy" : std::to_string(ns.ns);
      out << std::left;
      out.width(10);
      out << label << std::right;
      out.width(6);
      out << ns.traces;
      out.width(9);
      out << ns.folded;
      out.width(9);
      out << ns.discarded;
      out.width(9);
      out << ns.failed;
      out.width(9);
      out << ns.requeues << "  ";
      if (ns.jobSpanSeen) {
        out << ns.jobOutcome << " (" << ns.jobSeconds << " s)";
      } else {
        out << "-";
      }
      out << "\n";
    }
  }
  if (!report.workerSpansSeen) {
    out << "note:     no worker.execute spans in the input - pass each worker's\n"
        << "          --telemetry-out file too for wire/execute breakdowns\n";
  }

  const double accounted = report.queueSeconds + report.wireSeconds +
                           report.executeSeconds + report.foldSeconds;
  if (accounted > 0.0) {
    const auto pct = [&](double x) { return 100.0 * x / accounted; };
    out << "critical path (summed over shards):\n";
    out << "  queue    " << report.queueSeconds << " s  (" << pct(report.queueSeconds)
        << "%)\n";
    out << "  wire     " << report.wireSeconds << " s  (" << pct(report.wireSeconds)
        << "%)\n";
    out << "  execute  " << report.executeSeconds << " s  ("
        << pct(report.executeSeconds) << "%)\n";
    out << "  fold     " << report.foldSeconds << " s  (" << pct(report.foldSeconds)
        << "%)\n";
  }

  if (!report.workers.empty()) {
    out << "workers (wall span " << report.wallSeconds << " s):\n";
    for (const telemetry::WorkerReport& w : report.workers) {
      out << "  r" << w.rank << "  " << w.tasks << " task(s), busy " << w.busySeconds
          << " s (" << 100.0 * w.utilization << "% utilized)";
      if (w.offsetKnown) out << ", clock offset " << w.clockOffsetSeconds << " s";
      out << "\n";
    }
  }

  if (!report.stragglers.empty()) {
    out << "stragglers (slowest shard lifecycles):\n";
    for (const telemetry::ShardTrace& t : report.stragglers) {
      out << "  trace " << t.traceId << "  " << t.totalSeconds << " s, " << t.dispatches
          << " dispatch(es)";
      if (t.requeues > 0) out << ", " << t.requeues << " requeue(s)";
      out << (t.folded     ? ", folded"
              : t.discarded ? ", discarded"
              : t.failed    ? ", failed"
              : t.abandoned ? ", abandoned"
                            : "")
          << "\n";
    }
  }

  for (const std::string& p : report.problems) out << "problem:  " << p << "\n";
  if (args.getBool("verify", false)) {
    if (!report.ok()) {
      out << "verify:   FAILED (" << report.problems.size() << " problem(s))\n";
      return 1;
    }
    if (report.traces == 0) {
      out << "verify:   FAILED (no traced shards in input)\n";
      return 1;
    }
    out << "verify:   ok (" << report.traces << " complete span tree(s))\n";
  }
  return 0;
}

int runInfoCommand(const Args&, std::ostream& out) {
  out << "sfopt - stochastic-function optimization (IPDPS'11 reproduction)\n";
  out << "algorithms: det mn anderson pc pcmn pso sa\n";
  out << "functions:  rosenbrock powell sphere rastrigin quadratic\n";
  out << "transports: in-process (--mw), tcp (serve/worker), protocol v"
      << net::kProtocolVersion << "\n";
  out << "simd:       detected " << simd::isaName(simd::detectBestIsa()) << ", active "
      << simd::isaName(simd::activeIsa()) << " (supported: " << simd::supportedIsaNames()
      << ")\n";
  out << "commands:\n";
  out << "  optimize --function F --dim D --algorithm A --sigma0 S [--mw] ...\n";
  out << "  serve    --port P --workers W --function F --dim D --algorithm A ...\n";
  out << "  serve    --daemon --port P [--max-concurrent N] [--max-queued M]\n";
  out << "           [--max-jobs K]   (multi-tenant service; jobs via submit)\n";
  out << "           [--state-dir DIR] [--checkpoint-interval I] (durable: journal\n";
  out << "           + checkpoints; a restarted daemon resumes its jobs)\n";
  out << "           [--result-retention N] [--speculative-factor F]\n";
  out << "  submit   --host H --port P --function F --dim D --algorithm A ...\n";
  out << "           [--detach] [--priority 1..100] (same flags/defaults as optimize)\n";
  out << "  status   --host H --port P [--job N] [--result]  (N omitted = summary;\n";
  out << "           --result pulls the stored outcome, surviving restarts)\n";
  out << "  cancel   --host H --port P --job N\n";
  out << "  worker   --host H --port P [--reconnect false] [--master-timeout S]\n";
  out << "  chaosproxy --target-port P [--port L] [--scenario partition-heal|\n";
  out << "           blackhole-up|blackhole-down|delay-duplicate|midframe-stall|none]\n";
  out << "           [--seed N] [--duration S]  (fault-injecting relay for tests)\n";
  out << "  water    --algorithm mn|pc|pcmn --sigma0 S\n";
  out << "  probe    --function F --dim D --point x,y,... --samples N\n";
  out << "  md       --molecules N --force-threads T --equilibration E --production P "
         "[--json]\n";
  out << "  metrics  <file.jsonl>  (summarize a --telemetry-out capture)\n";
  out << "  trace    <master.jsonl> [worker.jsonl ...] [--verify] [--top N]\n";
  out << "  info\n";
  out << "telemetry:  add --telemetry-out run.jsonl [--telemetry-append] to optimize,\n";
  out << "            serve, worker, water, or md to capture spans and metrics;\n";
  out << "            --telemetry-flush S makes traces survive a killed process\n";
  out << "tracing:    serve and worker stamp every task with a distributed trace\n";
  out << "            id; `sfopt trace` merges their captures into per-shard span\n";
  out << "            trees with queue/wire/execute breakdowns\n";
  out << "pipeline:   --shard-min-samples N splits big sampling batches across\n";
  out << "            workers; --speculate prefetches the next round (optimize\n";
  out << "            --mw, water, serve; results stay bitwise identical)\n";
  out << "isa:        --isa scalar|sse4|avx2|neon (or SFOPT_ISA env) pins the\n";
  out << "            vectorized kernel level; results are bitwise reproducible\n";
  out << "            within an ISA regardless of threads or shard layout\n";
  return 0;
}

int runCli(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err) {
  try {
    const Args args = Args::parse(argv);
    const std::string& cmd = args.command();
    if (cmd == "optimize") return runOptimizeCommand(args, out);
    if (cmd == "serve") return runServeCommand(args, out);
    if (cmd == "submit") return runSubmitCommand(args, out);
    if (cmd == "status") return runStatusCommand(args, out);
    if (cmd == "cancel") return runCancelCommand(args, out);
    if (cmd == "worker") return runWorkerCommand(args, out);
    if (cmd == "chaosproxy") return runChaosProxyCommand(args, out);
    if (cmd == "water") return runWaterCommand(args, out);
    if (cmd == "probe") return runProbeCommand(args, out);
    if (cmd == "md") return runMdCommand(args, out);
    if (cmd == "metrics") return runMetricsCommand(args, out);
    if (cmd == "trace") return runTraceCommand(args, out);
    if (cmd == "info" || cmd.empty()) return runInfoCommand(args, out);
    err << "unknown command '" << cmd << "'\n";
    (void)runInfoCommand(args, err);
    return 2;
  } catch (const ArgError& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "fatal: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace sfopt::tools
