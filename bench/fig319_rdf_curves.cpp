// Reproduces Figures 3.19 / 3.20: oxygen-oxygen radial distribution
// functions for (a) the non-optimal initial vertices, and for the models
// obtained with (b) MN, (c) PC and (d) PC+MN, each against the
// experimental curve and the published TIP4P model.  Also runs the real MD
// engine once at the published parameters to demonstrate the end-to-end
// g_OO(r) pipeline the surrogate substitutes for.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/harness.hpp"
#include "core/algorithms.hpp"
#include "md/simulation.hpp"
#include "water/cost.hpp"
#include "water/experimental.hpp"

using namespace sfopt;

namespace {

/// Print curves side by side on a decimated r grid.
void printCurves(const std::vector<std::pair<std::string, md::RdfCurve>>& curves,
                 double rLo, double rHi, int rows) {
  std::printf("%8s", "r(A)");
  for (const auto& [name, c] : curves) std::printf(" %10s", name.c_str());
  std::printf("\n");
  const auto& grid = curves.front().second.r;
  const double step = (rHi - rLo) / rows;
  double next = rLo;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (grid[i] < next) continue;
    std::printf("%8.2f", grid[i]);
    for (const auto& [name, c] : curves) std::printf(" %10.3f", c.g[i]);
    std::printf("\n");
    next += step;
  }
}

core::OptimizationResult optimize(const water::WaterCostObjective& objective,
                                  std::span<const core::Point> start, bool gate, bool pc) {
  if (!pc) {
    core::MaxNoiseOptions mn;
    mn.common.termination.tolerance = 1e-3;
    mn.common.termination.maxIterations = 300;
    mn.common.termination.maxSamples = 300'000;
    return core::runMaxNoise(objective, start, mn);
  }
  core::PCOptions opts;
  opts.maxNoiseGate = gate;
  opts.common.termination.tolerance = 1e-3;
  opts.common.termination.maxIterations = 300;
  opts.common.termination.maxSamples = 300'000;
  return core::runPointToPoint(objective, start, opts);
}

}  // namespace

int main() {
  bench::printHeader("Figures 3.19 / 3.20 - g_OO(r) curves");

  water::WaterCostObjective::Options objOpts;
  objOpts.sigma0 = 0.3;
  const water::WaterCostObjective objective(objOpts);
  const auto& surrogate = objective.surrogate();
  const auto expCurve = water::experimentalGOO();
  const auto tip4pCurve = surrogate.modelGOO(md::tip4pPublished());

  const auto allRows = water::table34InitialPoints();
  const std::vector<core::Point> start(allRows.begin(), allRows.begin() + 4);

  bench::printSubHeader("(a) initial vertices vs experiment");
  {
    std::vector<std::pair<std::string, md::RdfCurve>> curves{{"expt", expCurve}};
    for (std::size_t v = 0; v < start.size(); ++v) {
      curves.emplace_back("vertex" + std::to_string(v + 1),
                          surrogate.modelGOO(water::paramsFromPoint(start[v])));
    }
    printCurves(curves, 2.0, 8.0, 24);
  }

  const struct {
    const char* name;
    bool pc;
    bool gate;
  } algos[] = {{"MN", false, false}, {"PC", true, false}, {"PC+MN", true, true}};
  for (const auto& a : algos) {
    const auto res = optimize(objective, start, a.gate, a.pc);
    bench::printSubHeader(std::string("(") + (a.pc ? (a.gate ? "d" : "c") : "b") + ") " +
                          a.name + " optimized model vs TIP4P vs experiment");
    std::printf("  final parameters: eps=%.4f sigma=%.4f qH=%.4f\n", res.best[0],
                res.best[1], res.best[2]);
    std::vector<std::pair<std::string, md::RdfCurve>> curves{
        {"expt", expCurve},
        {"TIP4P", tip4pCurve},
        {"optimized", surrogate.modelGOO(water::paramsFromPoint(res.best))},
    };
    printCurves(curves, 2.0, 8.0, 24);
  }

  bench::printSubHeader("Fig 3.20 - g_OO(r) at successive stages of the MN optimization");
  {
    // Snapshot the simplex every 10 steps via the checkpoint hook and
    // render the best vertex's model curve per stage.
    std::vector<std::pair<std::int64_t, core::Point>> stages;
    core::MaxNoiseOptions mn;
    mn.common.termination.tolerance = 1e-3;
    mn.common.termination.maxIterations = 300;
    mn.common.termination.maxSamples = 300'000;
    mn.common.checkpointEvery = 10;
    mn.common.checkpointSink = [&](const core::SimplexCheckpoint& cp) {
      const auto bestIt = std::min_element(
          cp.vertices.begin(), cp.vertices.end(),
          [](const auto& a, const auto& b) { return a.mean < b.mean; });
      stages.emplace_back(cp.iteration, bestIt->x);
    };
    const auto res = core::runMaxNoise(objective, start, mn);
    std::vector<std::pair<std::string, md::RdfCurve>> curves{{"expt", expCurve}};
    curves.emplace_back("step0", surrogate.modelGOO(water::paramsFromPoint(start[0])));
    const std::size_t stride = std::max<std::size_t>(stages.size() / 3, 1);
    for (std::size_t i = 0; i < stages.size() && curves.size() < 6; i += stride) {
      curves.emplace_back("step" + std::to_string(stages[i].first),
                          surrogate.modelGOO(water::paramsFromPoint(stages[i].second)));
    }
    curves.emplace_back("final", surrogate.modelGOO(water::paramsFromPoint(res.best)));
    printCurves(curves, 2.0, 8.0, 24);
    std::printf(
        "  (early-stage curves are distorted; successive stages sharpen onto\n"
        "   the experimental curve - the Fig 3.20 progression)\n");
  }

  bench::printSubHeader("MD-engine g_OO(r) at published TIP4P parameters (real dynamics)");
  {
    md::SimulationConfig cfg;
    cfg.molecules = 27;
    cfg.cutoff = 4.5;
    cfg.rdfRMax = 4.5;
    cfg.rdfBins = 45;
    cfg.equilibrationSteps = 1200;
    cfg.productionSteps = 1500;
    cfg.sampleEvery = 10;
    const auto obs = md::simulateWater(md::tip4pPublished(), cfg);
    std::printf("  U = %.2f kcal/mol/molecule, T = %.0f K, P = %.0f atm, D = %.2e cm2/s\n",
                obs.potentialPerMoleculeKcal, obs.temperatureK, obs.pressureAtm,
                obs.diffusionCm2PerS);
    std::vector<std::pair<std::string, md::RdfCurve>> curves{{"MD gOO", obs.gOO}};
    printCurves(curves, 2.0, 4.4, 20);
  }
  std::printf(
      "\nPaper shape check: initial vertices give distorted curves; all three\n"
      "optimized models land on the experimental curve at least as well as\n"
      "TIP4P; the raw MD engine shows the same first-peak structure.\n");
  return 0;
}
