#include "mw/sampling_service.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using namespace sfopt::mw;

TEST(SamplingTask, InputRoundTrip) {
  const std::vector<double> x{1.5, -2.5, 3.5};
  SamplingTask t(core::SamplingBackend::BatchRequest{x, 11, 100, 25});
  MessageBuffer buf;
  t.packInput(buf);
  SamplingTask u;
  u.unpackInput(buf);
  EXPECT_EQ(u.x(), x);
  EXPECT_EQ(u.vertexId(), 11u);
  EXPECT_EQ(u.startIndex(), 100u);
  EXPECT_EQ(u.count(), 25);
}

TEST(SamplingTask, ResultRoundTripPreservesMoments) {
  SamplingTask t;
  stats::Welford w;
  w.add(1.0);
  w.add(2.0);
  w.add(4.0);
  t.setResult(w);
  MessageBuffer buf;
  t.packResult(buf);
  SamplingTask u;
  u.unpackResult(buf);
  EXPECT_EQ(u.result().count(), 3);
  EXPECT_DOUBLE_EQ(u.result().mean(), w.mean());
  EXPECT_DOUBLE_EQ(u.result().variance(), w.variance());
}

struct ServiceFixture {
  explicit ServiceFixture(const noise::StochasticObjective& obj, int workers, int clients)
      : comm(workers + 1) {
    for (int w = 0; w < workers; ++w) {
      workerObjs.push_back(std::make_unique<SamplingWorker>(comm, w + 1, obj, clients));
      threads.emplace_back([this, w] { workerObjs[static_cast<std::size_t>(w)]->run(); });
    }
    driver = std::make_unique<MWDriver>(comm);
  }
  ~ServiceFixture() {
    driver->shutdown();
    for (auto& t : threads) t.join();
  }
  CommWorld comm;
  std::vector<std::unique_ptr<SamplingWorker>> workerObjs;
  std::vector<std::thread> threads;
  std::unique_ptr<MWDriver> driver;
};

TEST(MWSamplingBackend, SingleBatchMatchesInline) {
  auto obj = test::noisySphere(2, 3.0);
  ServiceFixture fx(obj, 3, 2);
  MWSamplingBackend backend(*fx.driver);

  const std::vector<double> x{2.0, -1.0};
  const auto got = backend.sampleBatch({x, 21, 0, 64});

  stats::Welford ref;
  for (std::uint64_t i = 0; i < 64; ++i) ref.add(obj.sample(x, {21, i}));
  EXPECT_EQ(got.count(), 64);
  EXPECT_NEAR(got.mean(), ref.mean(), 1e-12);
  EXPECT_NEAR(got.variance(), ref.variance(), 1e-9);
}

TEST(MWSamplingBackend, ManyBatchesInOrder) {
  auto obj = test::noisySphere(2, 1.0);
  ServiceFixture fx(obj, 4, 1);
  MWSamplingBackend backend(*fx.driver);

  std::vector<std::vector<double>> points;
  std::vector<core::SamplingBackend::BatchRequest> reqs;
  for (std::uint64_t v = 0; v < 10; ++v) {
    points.push_back({static_cast<double>(v), 0.0});
  }
  for (std::uint64_t v = 0; v < 10; ++v) {
    reqs.push_back({points[v], v, 0, 16});
  }
  const auto got = backend.sampleBatches(reqs);
  ASSERT_EQ(got.size(), 10u);
  for (std::uint64_t v = 0; v < 10; ++v) {
    stats::Welford ref;
    for (std::uint64_t i = 0; i < 16; ++i) ref.add(obj.sample(points[v], {v, i}));
    EXPECT_NEAR(got[v].mean(), ref.mean(), 1e-12) << "v=" << v;
  }
}

TEST(MWSamplingBackend, ZeroCountBatchesNeverLeaveTheMaster) {
  auto obj = test::noisySphere(2, 1.0);
  ServiceFixture fx(obj, 2, 1);
  MWSamplingBackend backend(*fx.driver);
  const std::vector<double> x{1.0, 1.0};
  const std::vector<core::SamplingBackend::BatchRequest> reqs = {
      {x, 1, 0, 0}, {x, 2, 0, 16}, {x, 3, 0, 0}, {x, 4, 8, 16}};
  const auto got = backend.sampleBatches(reqs);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].count(), 0);
  EXPECT_EQ(got[2].count(), 0);
  // Only the two real batches became worker tasks, mapped back by slot.
  EXPECT_EQ(fx.driver->tasksCompleted(), 2u);
  // Single-chunk batches: the result is the canonical chunk accumulation
  // of the sample stream, bitwise (see core::accumulateEvalChunk).
  std::vector<double> samples2;
  for (std::uint64_t i = 0; i < 16; ++i) samples2.push_back(obj.sample(x, {2, i}));
  const auto ref = core::accumulateEvalChunk(samples2);
  EXPECT_EQ(got[1].count(), 16);
  EXPECT_EQ(got[1].mean(), ref.mean());
  std::vector<double> samples4;
  for (std::uint64_t i = 8; i < 24; ++i) samples4.push_back(obj.sample(x, {4, i}));
  const auto ref4 = core::accumulateEvalChunk(samples4);
  EXPECT_EQ(got[3].mean(), ref4.mean());
}

TEST(MWSamplingBackend, AllZeroCountBatchesSkipDispatchEntirely) {
  auto obj = test::noisySphere(2, 1.0);
  ServiceFixture fx(obj, 2, 1);
  MWSamplingBackend backend(*fx.driver);
  const std::vector<double> x{0.0, 0.0};
  const std::vector<core::SamplingBackend::BatchRequest> reqs = {{x, 1, 0, 0}, {x, 2, 4, 0}};
  const auto got = backend.sampleBatches(reqs);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].count(), 0);
  EXPECT_EQ(got[1].count(), 0);
  EXPECT_EQ(fx.driver->tasksCompleted(), 0u);
}

TEST(MWSamplingBackend, AsyncAdapterDeliversCanonicalChunks) {
  auto obj = test::noisySphere(2, 2.0);
  ServiceFixture fx(obj, 2, 2);
  MWSamplingBackend backend(*fx.driver);
  core::AsyncSamplingBackend* async = backend.async();
  ASSERT_NE(async, nullptr);
  EXPECT_GE(async->parallelism(), 1);

  const std::vector<double> x{0.5, -0.5};
  const std::uint64_t ticket = async->submit({x, 9, 0, 150});
  std::vector<core::AsyncSamplingBackend::Completion> got;
  while (got.empty()) {
    auto ready = async->poll(5.0);
    got.insert(got.end(), ready.begin(), ready.end());
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].ticket, ticket);
  ASSERT_EQ(got[0].chunks.size(), 3u);  // 150 samples -> chunks of 64, 64, 22
  // Every chunk is the canonical accumulation of its index range's sample
  // stream, bitwise (core::accumulateEvalChunk — the active SIMD ISA's
  // kernel), even though two clients computed the batch.
  std::uint64_t index = 0;
  for (const auto& chunk : got[0].chunks) {
    std::vector<double> samples;
    for (std::int64_t i = 0; i < chunk.count(); ++i) {
      samples.push_back(obj.sample(x, {9, index + static_cast<std::uint64_t>(i)}));
    }
    const auto ref = core::accumulateEvalChunk(samples);
    EXPECT_EQ(chunk.count(), index + 64 <= 150 ? 64 : 22);
    EXPECT_EQ(chunk.mean(), ref.mean());
    EXPECT_EQ(chunk.sumSquaredDeviations(), ref.sumSquaredDeviations());
    index += static_cast<std::uint64_t>(chunk.count());
  }
}

TEST(MWSamplingBackend, WorkersShareTheLoad) {
  auto obj = test::noisySphere(2, 1.0);
  ServiceFixture fx(obj, 3, 1);
  MWSamplingBackend backend(*fx.driver);
  const std::vector<double> x{0.0, 0.0};
  std::vector<core::SamplingBackend::BatchRequest> reqs;
  for (std::uint64_t v = 0; v < 30; ++v) reqs.push_back({x, v, 0, 4});
  (void)backend.sampleBatches(reqs);
  // Dynamic dispatch should engage more than one worker for 30 tasks.
  int engaged = 0;
  for (const auto& w : fx.workerObjs) {
    if (w->tasksExecuted() > 0) ++engaged;
  }
  EXPECT_GE(engaged, 2);
}

}  // namespace
