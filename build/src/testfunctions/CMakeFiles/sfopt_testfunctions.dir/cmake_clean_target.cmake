file(REMOVE_RECURSE
  "libsfopt_testfunctions.a"
)
