#include "simd/dispatch.hpp"

#include <atomic>

#include "simd/kernels.hpp"
#include "telemetry/telemetry.hpp"

namespace sfopt::simd {

namespace {

std::atomic<std::int64_t> g_welfordChunks{0};
std::atomic<std::int64_t> g_forceBlocks{0};

struct KernelTable {
  detail::WelfordChunkFn welford;
  detail::ForcePairBlockFn force;
};

KernelTable tableFor(Isa isa) noexcept {
  switch (isa) {
#if defined(__x86_64__) || defined(__i386__)
    case Isa::Sse4:
      return {detail::welfordChunkSse4, detail::forcePairBlockSse4};
    case Isa::Avx2:
      return {detail::welfordChunkAvx2, detail::forcePairBlockAvx2};
#endif
#if defined(__aarch64__)
    case Isa::Neon:
      return {detail::welfordChunkNeon, detail::forcePairBlockNeon};
#endif
    default:
      return {detail::welfordChunkScalar, detail::forcePairBlockScalar};
  }
}

}  // namespace

stats::Welford welfordChunk(std::span<const double> samples) {
  g_welfordChunks.fetch_add(1, std::memory_order_relaxed);
  std::int64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  tableFor(activeIsa()).welford(samples.data(), static_cast<std::int64_t>(samples.size()), &n,
                                &mean, &m2);
  return stats::Welford::fromMoments(n, mean, m2);
}

void forcePairBlock(const ForceConstants& c, const ForcePairBlockIn& in,
                    const ForcePairBlockOut& out) {
  g_forceBlocks.fetch_add(1, std::memory_order_relaxed);
  tableFor(activeIsa()).force(c, in, out);
}

DispatchCounts dispatchCounts() noexcept {
  return {g_welfordChunks.load(std::memory_order_relaxed),
          g_forceBlocks.load(std::memory_order_relaxed)};
}

void publishTelemetry(telemetry::Telemetry& telemetry) {
  const DispatchCounts counts = dispatchCounts();
  auto& metrics = telemetry.metrics();
  metrics.gauge("simd.isa").set(static_cast<double>(static_cast<int>(activeIsa())));
  metrics.gauge("simd.dispatch.welford_chunks").set(static_cast<double>(counts.welfordChunks));
  metrics.gauge("simd.dispatch.force_blocks").set(static_cast<double>(counts.forceBlocks));
}

}  // namespace sfopt::simd
