// Reproduces Figures 3.8-3.17: the condition-mask ablation study of the PC
// algorithm at sigma0 = 1000 on the 4-d Rosenbrock function.  Each figure
// compares PC with the error bar applied in one subset of the seven
// comparison conditions against another subset:
//
//   Fig 3.8   c1   vs c6         Fig 3.13  c5   vs c1-7
//   Fig 3.9   c1   vs c1-7       Fig 3.14  c6   vs c1-7
//   Fig 3.10  c2   vs c1-7       Fig 3.15  c7   vs c1-7
//   Fig 3.11  c3   vs c1-7       Fig 3.16  c1   vs c136
//   Fig 3.12  c4   vs c1-7       Fig 3.17  c136 vs c1-7

#include <cstdio>
#include <utility>
#include <vector>

#include "common/harness.hpp"
#include "core/condition_mask.hpp"

using namespace sfopt;

namespace {

bench::RunFn pcWithMask(core::PCConditionMask mask) {
  return [mask](const noise::StochasticObjective& obj, std::span<const core::Point> start) {
    core::PCOptions pc = bench::campaignPc();
    pc.mask = mask;
    // The ablation studies the *uncapped* Algorithm 3: the harm of the
    // strict c1-7 variant is precisely its unbounded resampling of
    // irrelevant ties, which the library's default round cap would mask.
    pc.resample.maxRoundsPerComparison = 0;
    return core::runPointToPoint(obj, start, pc);
  };
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 100;
  bench::printHeader(
      "Figures 3.8-3.17 - PC condition-mask ablations, sigma0 = 1000, 4-d Rosenbrock");

  using Mask = core::PCConditionMask;
  const std::vector<std::tuple<std::string, Mask, Mask>> figures = {
      {"Fig 3.8 ", Mask::only({1}), Mask::only({6})},
      {"Fig 3.9 ", Mask::only({1}), Mask::all()},
      {"Fig 3.10", Mask::only({2}), Mask::all()},
      {"Fig 3.11", Mask::only({3}), Mask::all()},
      {"Fig 3.12", Mask::only({4}), Mask::all()},
      {"Fig 3.13", Mask::only({5}), Mask::all()},
      {"Fig 3.14", Mask::only({6}), Mask::all()},
      {"Fig 3.15", Mask::only({7}), Mask::all()},
      {"Fig 3.16", Mask::only({1}), Mask::only({1, 3, 6})},
      {"Fig 3.17", Mask::only({1, 3, 6}), Mask::all()},
  };

  bench::PairwiseCampaign campaign;
  campaign.trials = trials;

  int wins = 0;
  for (const auto& [name, a, b] : figures) {
    const auto hist = bench::comparePair(
        campaign, [](std::uint64_t seed) { return bench::noisyRosenbrock(4, 1000.0, seed); },
        pcWithMask(a), pcWithMask(b));
    bench::printComparison(name + "  log10(min " + a.label() + " / min " + b.label() + ")",
                           hist);
    const auto bal = hist.balanceAroundZero();
    if (bal.below >= bal.above) ++wins;
  }
  std::printf(
      "\nPaper shape check: the strict all-conditions variant (c1-7) includes\n"
      "harmful comparisons - every single-condition mask ties or beats it\n"
      "(numerator-favoured in %d of %zu panels); c136 sits between the single\n"
      "conditions and c1-7 (conclusions 3-5 of section 3.3).\n",
      wins, figures.size());
  return 0;
}
