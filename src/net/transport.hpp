#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "mw/message_buffer.hpp"

namespace sfopt::net {

/// Rank within a transport world.  Rank 0 is conventionally the master.
using Rank = int;

/// Matches any source rank or any tag in recv().
inline constexpr Rank kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Transport-reserved control tags.  Application tags are >= 0, so negative
/// values below kAnyTag can never collide.  A transport that tracks peer
/// liveness synthesizes these as ordinary inbound messages, which lets the
/// MW driver fold connection failures into its existing requeue path
/// without a side channel:
///
///  - kTagWorkerLost: the source rank's connection closed or its heartbeats
///    stopped; any task in flight there should be requeued elsewhere.
///  - kTagWorkerJoined: a new worker registered at the source rank (the
///    world grew mid-run); pending tasks may be dispatched to it.
///
/// The in-process CommWorld never emits either on its own, but accepts them
/// like any other tag, which the failure tests use to script loss events.
inline constexpr int kTagWorkerLost = -2;
inline constexpr int kTagWorkerJoined = -3;

/// A received (or in-flight) message: payload plus envelope.  The trace
/// fields carry distributed trace context across the process boundary
/// (wire format v2); 0 means "untraced".
struct Message {
  Rank source = 0;
  int tag = 0;
  mw::MessageBuffer payload;
  std::uint64_t traceId = 0;
  std::uint64_t parentSpan = 0;
};

/// Thrown by a network transport when its peer is gone for good: the
/// connection closed, reset, or timed out at the protocol level.  Callers
/// (the worker CLI loop) catch this to drive reconnect-with-backoff.
class ConnectionLost : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Point-to-point message transport between ranks — the seam between the
/// MW layer and the deployment substrate.  Two implementations exist:
/// the in-process CommWorld (N mailboxes, one thread per rank) and the
/// TCP pair TcpCommWorld / TcpWorkerTransport (one process per rank,
/// length-prefixed frames over sockets).  The MW driver and workers are
/// written against this interface only, so a run is distributed by
/// swapping the transport, not the MW code.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Number of ranks (1 master + workers).  May grow mid-run on transports
  /// that accept late-joining workers.
  [[nodiscard]] virtual int size() const = 0;

  /// Deliver `payload` to `to` with the given tag, recording `from` as the
  /// source.  `traceId`/`parentSpan` ride the envelope so the receiver can
  /// continue the sender's span tree (0 = untraced).  Best effort: sending
  /// to a rank whose peer is lost is a silent drop (the loss is reported
  /// via kTagWorkerLost on recv), so callers never race the failure
  /// detector.
  virtual void send(Rank from, Rank to, int tag, mw::MessageBuffer payload,
                    std::uint64_t traceId = 0, std::uint64_t parentSpan = 0) = 0;

  /// Block until a message matching (source, tag) arrives at `at`; remove
  /// and return it.  kAnySource / kAnyTag match anything.
  [[nodiscard]] virtual Message recv(Rank at, Rank source = kAnySource, int tag = kAnyTag) = 0;

  /// Deadline variant of recv(): wait at most `timeoutSeconds` for a match
  /// and return nullopt on timeout.  This is what keeps the master from
  /// blocking forever on a lost worker.
  [[nodiscard]] virtual std::optional<Message> recvFor(Rank at, double timeoutSeconds,
                                                       Rank source = kAnySource,
                                                       int tag = kAnyTag) = 0;

  /// Non-blocking probe-and-take: returns nullopt when no matching message
  /// is queued.
  [[nodiscard]] virtual std::optional<Message> tryRecv(Rank at, Rank source = kAnySource,
                                                       int tag = kAnyTag) = 0;

  /// Total application messages and bytes ever sent (for the scale-up
  /// accounting); transport-internal traffic (heartbeats, handshakes) is
  /// excluded here and reported via telemetry instead.
  [[nodiscard]] virtual std::uint64_t messagesSent() const = 0;
  [[nodiscard]] virtual std::uint64_t bytesSent() const = 0;

  /// Receive-side mirror of the counters above: application messages and
  /// bytes taken off the transport at this endpoint.
  [[nodiscard]] virtual std::uint64_t messagesReceived() const { return 0; }
  [[nodiscard]] virtual std::uint64_t bytesReceived() const { return 0; }

  /// Raw frame traffic including transport-internal frames (heartbeats,
  /// handshakes, telemetry snapshots).  In-process transports have no
  /// frames and report 0.
  [[nodiscard]] virtual std::uint64_t framesSent() const { return 0; }
  [[nodiscard]] virtual std::uint64_t framesReceived() const { return 0; }

  /// Protocol violations observed while decoding the peer's byte stream.
  [[nodiscard]] virtual std::uint64_t decodeErrors() const { return 0; }
};

}  // namespace sfopt::net
