file(REMOVE_RECURSE
  "libsfopt_md.a"
)
