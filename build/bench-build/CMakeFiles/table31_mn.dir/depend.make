# Empty dependencies file for table31_mn.
# This may be replaced when dependencies are built.
