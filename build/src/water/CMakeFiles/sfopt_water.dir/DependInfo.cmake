
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/water/cost.cpp" "src/water/CMakeFiles/sfopt_water.dir/cost.cpp.o" "gcc" "src/water/CMakeFiles/sfopt_water.dir/cost.cpp.o.d"
  "/root/repo/src/water/experimental.cpp" "src/water/CMakeFiles/sfopt_water.dir/experimental.cpp.o" "gcc" "src/water/CMakeFiles/sfopt_water.dir/experimental.cpp.o.d"
  "/root/repo/src/water/md_objective.cpp" "src/water/CMakeFiles/sfopt_water.dir/md_objective.cpp.o" "gcc" "src/water/CMakeFiles/sfopt_water.dir/md_objective.cpp.o.d"
  "/root/repo/src/water/surrogate.cpp" "src/water/CMakeFiles/sfopt_water.dir/surrogate.cpp.o" "gcc" "src/water/CMakeFiles/sfopt_water.dir/surrogate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sfopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/sfopt_md.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/sfopt_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sfopt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
