file(REMOVE_RECURSE
  "CMakeFiles/sfopt_bench_common.dir/common/harness.cpp.o"
  "CMakeFiles/sfopt_bench_common.dir/common/harness.cpp.o.d"
  "libsfopt_bench_common.a"
  "libsfopt_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfopt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
