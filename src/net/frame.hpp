#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

namespace sfopt::net {

/// Wire protocol of the TCP transport, version 1.
///
/// Every frame is length-prefixed so a byte stream can be reassembled into
/// discrete messages regardless of how the kernel segments it:
///
///   u32-LE  bodyLength            (bytes that follow, >= 1)
///   u8      FrameType
///   ...     type-specific body
///
/// Bodies (all integers little-endian):
///   Message:   i32 tag, then the MessageBuffer wire bytes
///   Heartbeat: empty
///   Hello:     u32 magic, u16 version          (worker -> master, once)
///   Welcome:   u32 magic, u16 version, i32 assigned rank, i32 world size
///
/// The handshake is Hello/Welcome: a connecting worker announces the
/// protocol magic and version, the master validates both, assigns the next
/// rank, and replies.  Anything malformed — wrong magic, unknown frame
/// type, or a length prefix beyond the configured maximum — raises
/// ProtocolError instead of being trusted.
inline constexpr std::uint32_t kProtocolMagic = 0x53464F50u;  // "SFOP"
inline constexpr std::uint16_t kProtocolVersion = 1;

/// Upper bound on a single frame body; a malformed or hostile length
/// prefix fails fast here rather than driving a giant allocation.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{64} << 20;

class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FrameType : std::uint8_t {
  Message = 1,
  Heartbeat = 2,
  Hello = 3,
  Welcome = 4,
};

struct Frame {
  FrameType type = FrameType::Heartbeat;
  int tag = 0;                      ///< Message frames only
  std::vector<std::byte> payload;   ///< Message: buffer wire; Hello/Welcome: handshake fields
};

struct Hello {
  std::uint32_t magic = kProtocolMagic;
  std::uint16_t version = kProtocolVersion;
};

struct Welcome {
  std::uint32_t magic = kProtocolMagic;
  std::uint16_t version = kProtocolVersion;
  std::int32_t rank = 0;
  std::int32_t worldSize = 0;
};

[[nodiscard]] Frame makeMessageFrame(int tag, std::vector<std::byte> payload);
[[nodiscard]] Frame makeHeartbeatFrame();
[[nodiscard]] Frame makeHelloFrame();
[[nodiscard]] Frame makeWelcomeFrame(int rank, int worldSize);

/// Serialize `frame` (length prefix included) onto `out`.
void appendFrame(std::vector<std::byte>& out, const Frame& frame);

/// Decode handshake bodies; throws ProtocolError on bad magic, version
/// mismatch, or a short body.
[[nodiscard]] Hello parseHello(const Frame& frame);
[[nodiscard]] Welcome parseWelcome(const Frame& frame);

/// Incremental frame reassembly over an arbitrary chunking of the byte
/// stream: feed() whatever arrived, next() yields complete frames.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t maxFrameBytes = kDefaultMaxFrameBytes)
      : maxFrameBytes_(maxFrameBytes) {}

  void feed(const std::byte* data, std::size_t n);

  /// Next complete frame, or nullopt when more bytes are needed.  Throws
  /// ProtocolError on a malformed prefix, unknown type, or oversize frame.
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_, compacted lazily
  std::size_t maxFrameBytes_;
};

}  // namespace sfopt::net
