file(REMOVE_RECURSE
  "CMakeFiles/sfopt_mw.dir/comm.cpp.o"
  "CMakeFiles/sfopt_mw.dir/comm.cpp.o.d"
  "CMakeFiles/sfopt_mw.dir/machinefile.cpp.o"
  "CMakeFiles/sfopt_mw.dir/machinefile.cpp.o.d"
  "CMakeFiles/sfopt_mw.dir/message_buffer.cpp.o"
  "CMakeFiles/sfopt_mw.dir/message_buffer.cpp.o.d"
  "CMakeFiles/sfopt_mw.dir/mw_driver.cpp.o"
  "CMakeFiles/sfopt_mw.dir/mw_driver.cpp.o.d"
  "CMakeFiles/sfopt_mw.dir/parallel_runner.cpp.o"
  "CMakeFiles/sfopt_mw.dir/parallel_runner.cpp.o.d"
  "CMakeFiles/sfopt_mw.dir/sampling_service.cpp.o"
  "CMakeFiles/sfopt_mw.dir/sampling_service.cpp.o.d"
  "CMakeFiles/sfopt_mw.dir/vertex_server.cpp.o"
  "CMakeFiles/sfopt_mw.dir/vertex_server.cpp.o.d"
  "libsfopt_mw.a"
  "libsfopt_mw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfopt_mw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
