#include "core/simplex.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using core::Point;
using core::Simplex;
using core::Vertex;

/// Build a simplex whose vertex means are forced to the given values.
Simplex makeSimplex(const std::vector<Point>& pts, const std::vector<double>& means) {
  std::vector<std::unique_ptr<Vertex>> vs;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    auto v = std::make_unique<Vertex>(pts[i], i);
    v->absorb(means[i]);
    v->absorb(means[i]);  // two identical samples: mean fixed, variance 0
    vs.push_back(std::move(v));
  }
  return Simplex(std::move(vs));
}

TEST(SimplexTransforms, ReflectExpandContract) {
  const Point cent{1.0, 1.0};
  const Point worst{2.0, 0.0};
  const Point ref = core::reflectPoint(cent, worst);  // 2c - w
  EXPECT_EQ(ref, (Point{0.0, 2.0}));
  const Point exp = core::expandPoint(ref, cent);  // 2r - c
  EXPECT_EQ(exp, (Point{-1.0, 3.0}));
  const Point con = core::contractPoint(worst, cent);  // (w + c) / 2
  EXPECT_EQ(con, (Point{1.5, 0.5}));
}

TEST(SimplexTransforms, CoefficientsRespected) {
  const Point cent{0.0, 0.0};
  const Point worst{1.0, 0.0};
  // alpha = 0.5: ref = 1.5 c - 0.5 w.
  EXPECT_EQ(core::reflectPoint(cent, worst, 0.5), (Point{-0.5, 0.0}));
  // beta = 0.25: con = 0.25 w + 0.75 c.
  EXPECT_EQ(core::contractPoint(worst, cent, 0.25), (Point{0.25, 0.0}));
}

TEST(SimplexTransforms, ReflectionOfReflectionIsIdentity) {
  const Point cent{0.3, -1.2};
  const Point w{2.0, 0.7};
  const Point r = core::reflectPoint(cent, w);
  const Point rr = core::reflectPoint(cent, r);
  EXPECT_NEAR(rr[0], w[0], 1e-12);
  EXPECT_NEAR(rr[1], w[1], 1e-12);
}

TEST(Simplex, RequiresAtLeastThreeVertices) {
  std::vector<std::unique_ptr<Vertex>> vs;
  vs.push_back(std::make_unique<Vertex>(Point{0.0}, 0));
  vs.push_back(std::make_unique<Vertex>(Point{1.0}, 1));
  EXPECT_THROW(Simplex(std::move(vs)), std::invalid_argument);
}

TEST(Simplex, VertexDimensionMustMatch) {
  std::vector<std::unique_ptr<Vertex>> vs;
  vs.push_back(std::make_unique<Vertex>(Point{0.0, 0.0, 0.0}, 0));
  vs.push_back(std::make_unique<Vertex>(Point{1.0, 0.0, 0.0}, 1));
  vs.push_back(std::make_unique<Vertex>(Point{0.0, 1.0, 0.0}, 2));
  EXPECT_THROW(Simplex(std::move(vs)), std::invalid_argument);  // 3 verts => d=2 expected
}

TEST(Simplex, OrderingIdentifiesMaxSmaxMin) {
  auto s = makeSimplex({{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}, {5.0, 1.0, 3.0});
  const auto o = s.ordering();
  EXPECT_EQ(o.max, 0u);
  EXPECT_EQ(o.smax, 2u);
  EXPECT_EQ(o.min, 1u);
}

TEST(Simplex, OrderingWithMaxAtEnd) {
  auto s = makeSimplex({{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}, {1.0, 3.0, 7.0});
  const auto o = s.ordering();
  EXPECT_EQ(o.max, 2u);
  EXPECT_EQ(o.smax, 1u);
  EXPECT_EQ(o.min, 0u);
}

TEST(Simplex, CentroidExcluding) {
  auto s = makeSimplex({{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}}, {9.0, 1.0, 1.0});
  EXPECT_EQ(s.centroidExcluding(0), (Point{1.0, 1.0}));
  EXPECT_EQ(s.centroidExcluding(1), (Point{0.0, 1.0}));
  EXPECT_THROW((void)s.centroidExcluding(3), std::out_of_range);
}

TEST(Simplex, ReplaceSwapsOwnership) {
  auto s = makeSimplex({{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}, {5.0, 1.0, 3.0});
  auto fresh = std::make_unique<Vertex>(Point{9.0, 9.0}, 99);
  auto old = s.replace(0, std::move(fresh));
  ASSERT_NE(old, nullptr);
  EXPECT_EQ(old->id(), 0u);
  EXPECT_EQ(s.at(0).id(), 99u);
  EXPECT_EQ(s.at(0).point(), (Point{9.0, 9.0}));
}

TEST(Simplex, ReplaceValidatesDimension) {
  auto s = makeSimplex({{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}, {5.0, 1.0, 3.0});
  EXPECT_THROW((void)s.replace(0, std::make_unique<Vertex>(Point{1.0}, 7)),
               std::invalid_argument);
  EXPECT_THROW((void)s.replace(0, nullptr), std::invalid_argument);
}

TEST(Simplex, CollapseTargetsHalveTowardMin) {
  auto s = makeSimplex({{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}}, {5.0, 1.0, 3.0});
  const auto targets = s.collapseTargets(1);  // min at (2, 0)
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0].first, 0u);
  EXPECT_EQ(targets[0].second, (Point{1.0, 0.0}));
  EXPECT_EQ(targets[1].first, 2u);
  EXPECT_EQ(targets[1].second, (Point{1.0, 1.0}));
}

TEST(Simplex, DiameterIsMaxPairwiseDistance) {
  auto s = makeSimplex({{0.0, 0.0}, {3.0, 4.0}, {0.0, 1.0}}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.diameter(), 5.0);
}

TEST(Simplex, ValueSpreadAndMean) {
  auto s = makeSimplex({{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}, {5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.valueSpread(), 4.0);
  EXPECT_DOUBLE_EQ(s.meanValue(), 3.0);
}

TEST(Simplex, InternalVariance) {
  auto s = makeSimplex({{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}, {5.0, 1.0, 3.0});
  // gbar = 3; deviations 2, -2, 0 => mean square = 8/3.
  EXPECT_DOUBLE_EQ(s.internalVariance(), 8.0 / 3.0);
}

TEST(Simplex, ContractionLevelBookkeeping) {
  auto s = makeSimplex({{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}, {5.0, 1.0, 3.0});
  EXPECT_EQ(s.contractionLevel(), 0);
  s.noteContraction();
  EXPECT_EQ(s.contractionLevel(), 1);
  s.noteExpansion();
  EXPECT_EQ(s.contractionLevel(), 0);
  s.noteCollapse();  // d = 2
  EXPECT_EQ(s.contractionLevel(), 2);
}

TEST(Simplex, MaxSigmaOverVertices) {
  auto obj = sfopt::test::noisySphere(2, 1.0);
  core::SamplingContext ctx(obj);
  std::vector<std::unique_ptr<Vertex>> vs;
  vs.push_back(ctx.createVertex({0.0, 0.0}, 100));
  vs.push_back(ctx.createVertex({1.0, 0.0}, 4));
  vs.push_back(ctx.createVertex({0.0, 1.0}, 100));
  Simplex s(std::move(vs));
  // The least-sampled vertex dominates.
  EXPECT_NEAR(s.maxSigma(ctx), ctx.sigma(s.at(1)), 1e-12);
  EXPECT_GT(s.maxSigma(ctx), 0.0);
}

}  // namespace
