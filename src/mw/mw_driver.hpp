#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "mw/comm.hpp"
#include "mw/mw_task.hpp"

namespace sfopt::telemetry {
class Telemetry;
class Counter;
class Histogram;
}

namespace sfopt::mw {

/// Re-implementation of the MW framework's MWDriver abstraction: the
/// master process that "manages a set of workers to execute the tasks".
///
/// The driver lives at rank 0 of any Transport (in-process CommWorld or
/// the distributed TcpCommWorld); workers occupy ranks 1..size-1.  Tasks
/// are dispatched dynamically: every worker gets one task up front, and
/// each completed result immediately frees its worker for the next queued
/// task, so stragglers do not serialize the batch.
///
/// Worker failure is part of the protocol, not an afterthought: a
/// kTagError reply requeues the task elsewhere, a kTagWorkerLost control
/// message (synthesized by the transport on disconnect or heartbeat
/// silence) marks the rank dead and requeues whatever it was running, and
/// a kTagWorkerJoined message grows the dispatch state so a fresh worker
/// starts pulling tasks mid-batch.
class MWDriver {
 public:
  explicit MWDriver(net::Transport& comm);

  /// Execute a batch of already-marshaled task inputs; returns the result
  /// buffers in task order.  Blocks until every task completes.  Throws
  /// when a task exhausts its retry budget, when every worker is lost, or
  /// when no message arrives within the receive timeout.
  [[nodiscard]] std::vector<MessageBuffer> executeBuffers(std::vector<MessageBuffer> inputs);

  /// Typed convenience: marshal each task's input, execute the batch, and
  /// unmarshal each result back into the same task objects.
  void executeTasks(std::span<MWTask* const> tasks);

  /// One finished non-blocking task: the id submit() returned and the
  /// worker's result payload.
  struct AsyncCompletion {
    std::uint64_t id = 0;
    MessageBuffer payload;
  };

  /// Non-blocking pipeline API, alongside executeBuffers: submit() enqueues
  /// one task (dispatching it immediately when a worker is free) and
  /// returns its id; poll() waits up to `timeoutSeconds` for at least one
  /// completion (0 = drain only) and returns everything finished so far;
  /// drain() blocks until nothing is outstanding.  Completions arrive in
  /// completion order, not submit order.  Worker failure and loss follow
  /// the same retry/requeue protocol as executeBuffers, so a shard whose
  /// worker dies is re-dispatched transparently.  Do not interleave
  /// executeBuffers with async tasks outstanding — both read the same
  /// mailbox and would steal each other's messages.
  ///
  /// `trace`, when nonzero, is used verbatim as the distributed trace id
  /// stamped on the task's spans and wire messages (0 keeps the legacy
  /// trace = task id).  The multi-tenant service passes its own ticket ids
  /// of the form (jobId << kTraceNamespaceShift) | sequence, so a capture
  /// holding many interleaved jobs still groups one span tree per shard
  /// and one namespace per job; requeues reuse the stored trace, so a
  /// ticket's whole retry history stays in its job's namespace.  Callers
  /// supplying traces are responsible for their uniqueness.
  [[nodiscard]] std::uint64_t submit(MessageBuffer input, std::uint64_t trace = 0);
  [[nodiscard]] std::vector<AsyncCompletion> poll(double timeoutSeconds);
  [[nodiscard]] std::vector<AsyncCompletion> drain();

  /// Async tasks submitted but not yet completed (pending + in flight).
  [[nodiscard]] std::size_t outstanding() const noexcept { return asyncTasks_.size(); }

  /// Send a shutdown message to every live worker.  Idempotent.
  void shutdown();

  [[nodiscard]] int workerCount() const noexcept { return comm_.size() - 1; }

  /// Workers not marked dead (the world only ever grows; dead ranks stay).
  [[nodiscard]] int liveWorkerCount() const noexcept;

  [[nodiscard]] std::uint64_t tasksCompleted() const noexcept { return tasksCompleted_; }

  /// Times a task was requeued after a worker-side failure or worker loss.
  [[nodiscard]] std::uint64_t tasksRequeued() const noexcept { return tasksRequeued_; }

  /// Workers declared lost (disconnect / heartbeat silence).
  [[nodiscard]] std::uint64_t workersLost() const noexcept { return workersLost_; }

  /// Per-task retry budget before executeBuffers gives up and throws.
  void setMaxRetries(int retries) { maxRetries_ = retries; }
  [[nodiscard]] int maxRetries() const noexcept { return maxRetries_; }

  /// Longest silence executeBuffers tolerates while tasks are in flight
  /// before concluding the run is wedged and throwing.  Generous default:
  /// transports already convert dead workers into kTagWorkerLost well
  /// before this fires; it is the backstop, not the detector.
  void setRecvTimeout(double seconds) { recvTimeoutSeconds_ = seconds; }
  [[nodiscard]] double recvTimeout() const noexcept { return recvTimeoutSeconds_; }

  /// Straggler mitigation on the async path: once a dispatched task has
  /// been out longer than `factor` times the EWMA of observed execute
  /// times, duplicate-dispatch it to an idle live worker.  First
  /// completion wins; the loser's late result is discarded against the
  /// ghost bookkeeping, so results are bitwise independent of which copy
  /// won (identical payload bytes either way).  Workers are only
  /// borrowed when the pending queue is empty, so speculation never
  /// delays first-time dispatches.  0 (the default) disables it.
  void setSpeculativeFactor(double factor) noexcept {
    speculativeFactor_ = factor < 0.0 ? 0.0 : factor;
  }
  [[nodiscard]] double speculativeFactor() const noexcept { return speculativeFactor_; }
  [[nodiscard]] std::uint64_t speculativeDuplicates() const noexcept {
    return speculativeDuplicates_;
  }
  [[nodiscard]] std::uint64_t speculativeDiscards() const noexcept {
    return speculativeDiscards_;
  }

  /// Completions (or error reports) that arrived for a task this driver no
  /// longer tracks, or from a rank that is not the task's current holder —
  /// duplicated frames, or late frames reordered across a reconnect.  They
  /// are discarded without touching the dispatch bookkeeping: the holder's
  /// own report (identical bytes, same deterministic task) is the one that
  /// folds.
  [[nodiscard]] std::uint64_t staleResultsDiscarded() const noexcept {
    return staleResultsDiscarded_;
  }

  /// Attach the observability spine (non-owning; must outlive the driver).
  /// Pre-registers the task-lifecycle metrics — queue-wait and execute
  /// histograms, per-worker utilization, completion/requeue counters — and
  /// emits one `mw.batch` span per executeBuffers call.
  ///
  /// With a spine attached every task additionally becomes a span tree
  /// keyed by its task id as the distributed trace id: one
  /// `shard.lifecycle` root per task, a `shard.queue` child per dispatch
  /// attempt, and a `shard.remote` child covering wire + worker execution
  /// (ended with outcome ok / requeued / lost).  The trace context rides
  /// the transport envelope, so a worker's `worker.execute` span parents
  /// under the matching `shard.remote`.
  void setTelemetry(telemetry::Telemetry* telemetry);

 private:
  [[nodiscard]] bool isDead(Rank w) const noexcept;
  void ensureRank(Rank w);
  [[nodiscard]] double telNow() const;

  /// Non-blocking path internals: per-task state mirrors executeBuffers'
  /// local TaskState, but persists across calls so tasks overlap rounds.
  struct AsyncTask {
    std::vector<std::byte> wire;  ///< framed input, kept for requeue
    int retries = 0;
    Rank lastFailedOn = -1;
    double enqueuedAt = 0.0;
    double dispatchedAt = 0.0;
    /// Steady-clock dispatch time (seconds): straggler detection and the
    /// execute EWMA must work without a telemetry spine attached.
    double dispatchedSteady = 0.0;
    std::uint64_t rootSpan = 0;    ///< shard.lifecycle span (trace = `trace`)
    std::uint64_t remoteSpan = 0;  ///< open shard.remote span while dispatched
    std::uint64_t trace = 0;       ///< trace id: caller-supplied, or task id
  };
  void asyncGrowTo(int worldSize);
  void asyncDispatch();
  void asyncRequeue(Rank worker, std::uint64_t id, const std::string& why,
                    const char* outcome);
  void handleAsyncMessage(Message msg);
  void observeIdleFraction();
  void maybeSpeculate();
  /// Ranks currently holding `id` (1 normally, 2 while a duplicate is out).
  [[nodiscard]] int holdersOf(std::uint64_t id) const noexcept;
  /// Free a rank whose copy of a task became redundant (no requeue).
  void releaseRank(Rank worker);
  [[nodiscard]] static double steadySeconds();

  net::Transport& comm_;
  std::uint64_t nextTaskId_ = 1;
  std::uint64_t tasksCompleted_ = 0;
  std::uint64_t tasksRequeued_ = 0;
  std::uint64_t workersLost_ = 0;
  int maxRetries_ = 3;
  double recvTimeoutSeconds_ = 300.0;
  bool shutDown_ = false;
  std::vector<bool> dead_;  ///< indexed by rank; persists across batches

  std::unordered_map<std::uint64_t, AsyncTask> asyncTasks_;
  std::deque<std::uint64_t> asyncPending_;
  std::vector<bool> asyncBusy_;
  std::vector<std::uint64_t> asyncInFlightId_;
  /// Per-rank id of a speculated task that already completed elsewhere:
  /// the rank stays busy until its late (discarded) report frees it.
  std::vector<std::uint64_t> asyncGhostId_;
  int asyncInFlight_ = 0;
  double speculativeFactor_ = 0.0;
  double executeEwma_ = 0.0;  ///< steady-clock EWMA of execute seconds
  std::uint64_t speculativeDuplicates_ = 0;
  std::uint64_t speculativeDiscards_ = 0;
  std::uint64_t staleResultsDiscarded_ = 0;
  std::vector<AsyncCompletion> asyncReady_;
  /// Every worker message handled on the async path, completions or not;
  /// drain() uses it to tell "backend silent" from "recovery in progress".
  std::uint64_t asyncMessagesHandled_ = 0;

  /// Pre-registered handles; all non-null exactly when telemetry_ is set.
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* telTasksCompleted_ = nullptr;
  telemetry::Counter* telTasksRequeued_ = nullptr;
  telemetry::Counter* telTasksDispatched_ = nullptr;
  telemetry::Counter* telWorkersLost_ = nullptr;
  telemetry::Counter* telBatches_ = nullptr;
  telemetry::Counter* telSpecDuplicates_ = nullptr;
  telemetry::Counter* telSpecDiscards_ = nullptr;
  telemetry::Counter* telStaleDiscards_ = nullptr;
  telemetry::Histogram* telQueueWait_ = nullptr;
  telemetry::Histogram* telExecute_ = nullptr;
  telemetry::Histogram* telUtilization_ = nullptr;
  telemetry::Histogram* telIdleFraction_ = nullptr;
};

}  // namespace sfopt::mw
