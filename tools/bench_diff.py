#!/usr/bin/env python3
"""Compare a fresh bench JSON against a committed baseline.

Usage:
    bench_diff.py BASELINE.json FRESH.json [--threshold 0.25]

Joins the two reports on result name and flags any metric that moved in
its bad direction by more than the relative threshold (unit "s"/"us":
lower is better, everything else: higher is better).  Exit status is 1
when at least one regression exceeds the threshold, 0 otherwise; metrics
present on only one side are reported but never fail the diff (benches
gain and lose rows as they evolve).

When the two reports were taken on hosts with different CPU models or
SIMD support, the comparison is printed but regressions are demoted to
warnings -- cross-host numbers are apples to oranges.
"""

import argparse
import json
import sys


LOWER_IS_BETTER_UNITS = {"s", "us", "ms"}


def load(path):
    with open(path) as f:
        report = json.load(f)
    results = {r["name"]: r for r in report.get("results", [])}
    return report, results


def same_host(a, b):
    ha, hb = a.get("host", {}), b.get("host", {})
    return (ha.get("cpu"), ha.get("supported_isas")) == (
        hb.get("cpu"),
        hb.get("supported_isas"),
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative regression threshold (default 0.25 = 25%%)",
    )
    args = ap.parse_args()

    base_report, base = load(args.baseline)
    fresh_report, fresh = load(args.fresh)
    comparable = same_host(base_report, fresh_report)
    if not comparable:
        print(
            "note: baseline and fresh runs come from different hosts; "
            "regressions are reported as warnings only"
        )

    regressions = []
    print(f"{'result':<44} {'baseline':>14} {'fresh':>14} {'change':>9}")
    for name in sorted(set(base) | set(fresh)):
        if name not in base:
            print(f"{name:<44} {'-':>14} {fresh[name]['value']:>14.6g}   (new)")
            continue
        if name not in fresh:
            print(f"{name:<44} {base[name]['value']:>14.6g} {'-':>14}   (gone)")
            continue
        b, f = base[name]["value"], fresh[name]["value"]
        unit = fresh[name].get("unit", "")
        if b == 0:
            change = 0.0
        else:
            change = (f - b) / abs(b)
        # Normalize so positive `bad` always means "got worse".
        bad = change if unit in LOWER_IS_BETTER_UNITS else -change
        flag = ""
        if bad > args.threshold:
            flag = "  REGRESSION" if comparable else "  (warn: slower)"
            if comparable:
                regressions.append((name, b, f, change))
        print(f"{name:<44} {b:>14.6g} {f:>14.6g} {change:>+8.1%}{flag}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.threshold:.0%}:")
        for name, b, f, change in regressions:
            print(f"  {name}: {b:.6g} -> {f:.6g} ({change:+.1%})")
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
