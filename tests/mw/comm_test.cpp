#include "mw/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace {

using namespace sfopt::mw;

MessageBuffer payload(std::int64_t v) {
  MessageBuffer b;
  b.pack(v);
  return b;
}

TEST(CommWorld, RejectsEmptyWorld) { EXPECT_THROW(CommWorld(0), std::invalid_argument); }

TEST(CommWorld, SendRecvSameThread) {
  CommWorld w(2);
  w.send(0, 1, 5, payload(123));
  Message m = w.recv(1);
  EXPECT_EQ(m.source, 0);
  EXPECT_EQ(m.tag, 5);
  EXPECT_EQ(m.payload.unpackInt64(), 123);
}

TEST(CommWorld, RecvFiltersBySourceAndTag) {
  CommWorld w(3);
  w.send(1, 0, 7, payload(1));
  w.send(2, 0, 8, payload(2));
  // Take the tag-8 message first even though tag-7 arrived first.
  Message m8 = w.recv(0, kAnySource, 8);
  EXPECT_EQ(m8.payload.unpackInt64(), 2);
  Message m7 = w.recv(0, 1, kAnyTag);
  EXPECT_EQ(m7.payload.unpackInt64(), 1);
}

TEST(CommWorld, TryRecvNonBlocking) {
  CommWorld w(2);
  EXPECT_FALSE(w.tryRecv(1).has_value());
  w.send(0, 1, 1, payload(5));
  auto m = w.tryRecv(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload.unpackInt64(), 5);
  EXPECT_FALSE(w.tryRecv(1).has_value());
}

TEST(CommWorld, RankRangeChecked) {
  CommWorld w(2);
  EXPECT_THROW(w.send(0, 2, 0, MessageBuffer{}), std::out_of_range);
  EXPECT_THROW(w.send(-1, 1, 0, MessageBuffer{}), std::out_of_range);
  EXPECT_THROW((void)w.recv(9), std::out_of_range);
}

TEST(CommWorld, BlockingRecvWakesOnSend) {
  CommWorld w(2);
  std::atomic<bool> got{false};
  std::thread receiver([&] {
    Message m = w.recv(1, 0, 9);
    got = m.payload.unpackInt64() == 77;
  });
  // Give the receiver a moment to block, then send.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.send(0, 1, 9, payload(77));
  receiver.join();
  EXPECT_TRUE(got);
}

TEST(CommWorld, ManyToOneOrderingPreservedPerSource) {
  CommWorld w(3);
  for (std::int64_t i = 0; i < 10; ++i) w.send(1, 0, 1, payload(i));
  for (std::int64_t i = 0; i < 10; ++i) {
    Message m = w.recv(0, 1, 1);
    EXPECT_EQ(m.payload.unpackInt64(), i);  // FIFO per (source, tag)
  }
}

TEST(CommWorld, StatsCountMessagesAndBytes) {
  CommWorld w(2);
  EXPECT_EQ(w.messagesSent(), 0u);
  w.send(0, 1, 1, payload(1));
  w.send(0, 1, 1, payload(2));
  EXPECT_EQ(w.messagesSent(), 2u);
  EXPECT_GT(w.bytesSent(), 0u);
}

TEST(CommWorld, QueuedAtCountsBacklog) {
  CommWorld w(2);
  EXPECT_EQ(w.queuedAt(1), 0u);
  w.send(0, 1, 1, payload(1));
  w.send(0, 1, 2, payload(2));
  EXPECT_EQ(w.queuedAt(1), 2u);
  (void)w.recv(1);
  EXPECT_EQ(w.queuedAt(1), 1u);
}

TEST(CommWorld, RecvForReturnsImmediatelyWhenQueued) {
  CommWorld w(2);
  w.send(0, 1, 7, payload(11));
  auto m = w.recvFor(1, 5.0, 0, 7);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload.unpackInt64(), 11);
}

TEST(CommWorld, RecvForTimesOutWithoutMatch) {
  CommWorld w(2);
  w.send(0, 1, 7, payload(11));  // wrong tag: must not satisfy the wait
  const auto m = w.recvFor(1, 0.05, 0, 99);
  EXPECT_FALSE(m.has_value());
  EXPECT_EQ(w.queuedAt(1), 1u);  // the non-matching message is untouched
}

TEST(CommWorld, RecvForWakesOnLateArrival) {
  CommWorld w(2);
  std::thread sender([&w] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    w.send(0, 1, 3, payload(5));
  });
  auto m = w.recvFor(1, 5.0, kAnySource, 3);
  sender.join();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload.unpackInt64(), 5);
}

TEST(CommWorld, RecvForZeroTimeoutActsLikeTryRecv) {
  CommWorld w(2);
  EXPECT_FALSE(w.recvFor(1, 0.0).has_value());
  w.send(0, 1, 1, payload(1));
  EXPECT_TRUE(w.recvFor(1, 0.0).has_value());
}

TEST(CommWorld, ConcurrentSendersDeliverEverything) {
  CommWorld w(5);
  constexpr int perSender = 200;
  std::vector<std::thread> senders;
  for (int s = 1; s <= 4; ++s) {
    senders.emplace_back([&w, s] {
      for (int i = 0; i < perSender; ++i) w.send(s, 0, 1, payload(i));
    });
  }
  int received = 0;
  for (int i = 0; i < 4 * perSender; ++i) {
    (void)w.recv(0);
    ++received;
  }
  for (auto& t : senders) t.join();
  EXPECT_EQ(received, 4 * perSender);
  EXPECT_EQ(w.queuedAt(0), 0u);
}

}  // namespace
