#include "core/trace_io.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace sfopt::core {

void writeTraceCsv(std::ostream& out, const OptimizationTrace& trace) {
  out << "iteration,time,best_estimate,best_true,diameter,contraction_level,move,"
         "total_samples,wall_seconds,resample_rounds\n";
  out.precision(17);
  for (const StepRecord& r : trace.steps()) {
    out << r.iteration << ',' << r.time << ',' << r.bestEstimate << ',';
    if (r.bestTrue) out << *r.bestTrue;
    out << ',' << r.diameter << ',' << r.contractionLevel << ',' << toString(r.move) << ','
        << r.totalSamples << ',' << r.wallSeconds << ',' << r.resampleRounds << '\n';
  }
}

void saveTraceCsv(const std::filesystem::path& file, const OptimizationTrace& trace) {
  std::ofstream out(file, std::ios::trunc);
  if (!out) throw std::runtime_error("saveTraceCsv: cannot open " + file.string());
  writeTraceCsv(out, trace);
  if (!out) throw std::runtime_error("saveTraceCsv: write failed for " + file.string());
}

}  // namespace sfopt::core
