file(REMOVE_RECURSE
  "../bench/fig34_traces"
  "../bench/fig34_traces.pdb"
  "CMakeFiles/fig34_traces.dir/fig34_traces.cpp.o"
  "CMakeFiles/fig34_traces.dir/fig34_traces.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig34_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
