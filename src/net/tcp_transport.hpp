#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"

namespace sfopt::telemetry {
class Telemetry;
class Counter;
}

namespace sfopt::net {

/// Pre-registered transport-layer metric handles (the `net` layer of the
/// observability spine).  All pointers are null when no telemetry is
/// attached; add() tolerates that, so the hot path never branches twice.
struct NetTelemetry {
  telemetry::Counter* messagesIn = nullptr;
  telemetry::Counter* messagesOut = nullptr;
  telemetry::Counter* bytesIn = nullptr;
  telemetry::Counter* bytesOut = nullptr;
  telemetry::Counter* connects = nullptr;
  telemetry::Counter* disconnects = nullptr;
  telemetry::Counter* heartbeatsSent = nullptr;
  telemetry::Counter* heartbeatMisses = nullptr;
  telemetry::Counter* sendsDropped = nullptr;
  telemetry::Counter* sendStalls = nullptr;
  telemetry::Counter* framesIn = nullptr;
  telemetry::Counter* framesOut = nullptr;
  telemetry::Counter* decodeErrors = nullptr;

  static NetTelemetry registerIn(telemetry::Telemetry* telemetry);
  static void add(telemetry::Counter* c, std::int64_t n = 1) noexcept;
};

/// Application-level counters a worker process exposes to its transport so
/// the heartbeat thread can ship them to the master (FrameType::Telemetry).
struct WorkerStats {
  std::uint64_t tasksExecuted = 0;
  std::uint64_t tasksFailed = 0;
  double executeEwmaSeconds = 0.0;
};

/// Rolling per-worker health the master accumulates from telemetry
/// snapshots.  All times are seconds; rttSeconds < 0 until the first
/// round-trip estimate lands.
struct FleetHealth {
  bool seen = false;                ///< any snapshot received yet
  double rttSeconds = -1.0;         ///< heartbeat round-trip estimate
  double clockOffsetSeconds = 0.0;  ///< worker clock minus master clock
  double executeEwmaSeconds = 0.0;
  std::uint64_t tasksExecuted = 0;
  std::uint64_t tasksFailed = 0;
  std::uint64_t bytesIn = 0;    ///< as counted by the worker
  std::uint64_t bytesOut = 0;
  std::uint64_t messagesIn = 0;
  std::uint64_t messagesOut = 0;
  std::uint32_t queueDepth = 0;
  double lastUpdateSeconds = 0.0;  ///< master clock time of latest snapshot
};

/// Knobs for the master side.  (Defined at namespace scope so it can be a
/// defaulted `= {}` constructor argument — a nested aggregate with default
/// member initializers cannot be.)
struct TcpMasterOptions {
  double heartbeatIntervalSeconds = 2.0;  ///< cadence of master->worker beats
  double heartbeatTimeoutSeconds = 10.0;  ///< silence after which a worker is lost
  /// A peer whose socket has accepted no bytes for this long while we have
  /// frames queued for it is lost — recv-silence alone cannot catch a
  /// half-open connection where the worker still heartbeats us but never
  /// drains its side (one-way partition, wedged middlebox).  0 falls back
  /// to heartbeatTimeoutSeconds.
  double sendStallTimeoutSeconds = 0.0;
  /// Cap on the per-peer userspace send backlog; exceeding it evicts the
  /// peer as lost rather than letting a stalled consumer grow the buffer
  /// without bound.  0 disables the cap (not recommended).
  std::size_t maxSendBufferBytes = std::size_t{64} << 20;
  std::size_t maxFrameBytes = kDefaultMaxFrameBytes;
  telemetry::Telemetry* telemetry = nullptr;
};

/// Knobs for the worker side.
struct TcpWorkerOptions {
  double heartbeatIntervalSeconds = 2.0;
  double masterTimeoutSeconds = 0.0;  ///< 0 = rely on TCP disconnect only
  double connectTimeoutSeconds = 10.0;
  double handshakeTimeoutSeconds = 10.0;
  std::size_t maxFrameBytes = kDefaultMaxFrameBytes;
  telemetry::Telemetry* telemetry = nullptr;
};

/// Master-side TCP transport: rank 0 of a distributed world.  Binds a
/// port, accepts worker connections, runs the Hello/Welcome handshake, and
/// assigns ranks 1..N in connection order.  The world grows as workers
/// join (including re-joins after a crash); a rank is never reused, so a
/// reconnecting worker appears as a fresh rank and the old one stays lost.
///
/// Peers announcing kPeerClient in their Hello register in a separate
/// client id space (they never consume worker ranks, never receive tasks,
/// and are invisible to size()/liveWorkers()/fleetHealth()).  Their Job*
/// frames surface through takeClientRequests() and replies go out via
/// sendToClient() — the job control plane of the multi-tenant service.
/// Clients are request/response peers: no heartbeat-silence eviction, a
/// closed connection simply retires the id.
///
/// Failure detection is three-pronged: a closed/reset connection is
/// noticed immediately via poll, a hung-but-open peer is noticed when its
/// heartbeats stop for `heartbeatTimeoutSeconds`, and a half-open peer
/// that still heartbeats us but stops draining its own socket is noticed
/// when our sends stall past `sendStallTimeoutSeconds` (or the backlog
/// exceeds `maxSendBufferBytes`).  Either way the loss is surfaced as a
/// kTagWorkerLost message so the MW driver requeues the worker's
/// in-flight task, and the lost rank's `fleet.r<N>.*` gauges are retired.
///
/// Threading: intended to be driven by one (master) thread; not
/// thread-safe.  All I/O happens inside recv/recvFor/tryRecv/send and
/// waitForWorkers — there is no background thread on the master side.
class TcpCommWorld final : public Transport {
 public:
  using Options = TcpMasterOptions;

  /// Bind + listen; port 0 picks an ephemeral port (see port()).
  explicit TcpCommWorld(std::uint16_t port, Options options = {});
  ~TcpCommWorld() override;

  TcpCommWorld(const TcpCommWorld&) = delete;
  TcpCommWorld& operator=(const TcpCommWorld&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Message delivered to every worker right after its Welcome (and again
  /// to every later joiner) — the application uses this to push the
  /// objective/deployment configuration without a separate exchange.
  void setGreeting(int tag, mw::MessageBuffer payload);

  /// Block until `count` workers are connected and registered (or throw
  /// std::runtime_error after `timeoutSeconds`).  Returns the live count.
  int waitForWorkers(int count, double timeoutSeconds);

  [[nodiscard]] int liveWorkers() const noexcept;

  /// Latest health snapshot for every registered rank (index = rank - 1).
  /// Entries with !seen never shipped telemetry (or predate v2 workers).
  [[nodiscard]] std::vector<FleetHealth> fleetHealth() const;

  /// One Job* frame received from a registered client peer.
  struct ClientRequest {
    int client = 0;  ///< client id (1-based, never a worker rank)
    FrameType type = FrameType::JobSubmit;
    mw::MessageBuffer payload;
  };

  /// Drain every client job frame received so far (the daemon's control
  /// plane inbox).  Requests surface in arrival order.
  [[nodiscard]] std::vector<ClientRequest> takeClientRequests();

  /// Send a Job* reply to a client; silently dropped when the client is
  /// gone (mirrors send()'s contract for lost workers).
  void sendToClient(int client, FrameType type, mw::MessageBuffer payload);

  /// Clients currently connected (registered and not yet closed).
  [[nodiscard]] int connectedClients() const noexcept;

  /// Drive one pass of the event loop without receiving: accepts joiners,
  /// reads client/worker frames into the inboxes, flushes pending writes,
  /// runs heartbeat bookkeeping.  The daemon idle loop calls this so the
  /// world keeps turning while no MW task is outstanding.
  void pump(double timeoutSeconds);

  // -- Transport (at/from must be rank 0) ---------------------------------
  [[nodiscard]] int size() const noexcept override;
  void send(Rank from, Rank to, int tag, mw::MessageBuffer payload,
            std::uint64_t traceId = 0, std::uint64_t parentSpan = 0) override;
  [[nodiscard]] Message recv(Rank at, Rank source = kAnySource, int tag = kAnyTag) override;
  [[nodiscard]] std::optional<Message> recvFor(Rank at, double timeoutSeconds,
                                               Rank source = kAnySource,
                                               int tag = kAnyTag) override;
  [[nodiscard]] std::optional<Message> tryRecv(Rank at, Rank source = kAnySource,
                                               int tag = kAnyTag) override;
  [[nodiscard]] std::uint64_t messagesSent() const override { return messagesSent_; }
  [[nodiscard]] std::uint64_t bytesSent() const override { return bytesSent_; }
  [[nodiscard]] std::uint64_t messagesReceived() const override { return messagesReceived_; }
  [[nodiscard]] std::uint64_t bytesReceived() const override { return bytesReceived_; }
  [[nodiscard]] std::uint64_t framesSent() const override { return framesSent_; }
  [[nodiscard]] std::uint64_t framesReceived() const override { return framesReceived_; }
  [[nodiscard]] std::uint64_t decodeErrors() const override { return decodeErrors_; }

 private:
  struct Peer {
    Socket sock;
    FrameDecoder decoder;
    std::vector<std::byte> sendBuf;
    std::size_t sendPos = 0;
    double lastHeard = 0.0;
    double lastBeat = 0.0;
    /// When the kernel first refused our bytes with a backlog pending
    /// (0 = sends are flowing).  Half-open detection: a peer that keeps
    /// heartbeating us but never drains its socket trips this deadline,
    /// not the recv-silence one.
    double sendBlockedSince = 0.0;
    bool alive = false;
    FleetHealth health;
  };
  struct PendingPeer {
    Socket sock;
    FrameDecoder decoder;
    double since = 0.0;
  };
  /// A registered client peer (service control plane, not a worker rank).
  struct ClientPeer {
    Socket sock;
    FrameDecoder decoder;
    std::vector<std::byte> sendBuf;
    std::size_t sendPos = 0;
    bool alive = false;
  };

  /// One pass of the event loop: poll the listener + every socket for at
  /// most `timeoutSeconds`, service reads/writes/accepts, then run the
  /// heartbeat bookkeeping.
  void pollOnce(double timeoutSeconds);
  void serviceListener();
  void servicePending(std::size_t index);
  void servicePeer(Rank rank);
  void handleSnapshot(Rank rank, const TelemetrySnapshot& snap);
  /// Master time on the telemetry clock when attached (so heartbeat stamps
  /// line up with trace timestamps), else the monotonic process clock.
  [[nodiscard]] double masterNow() const;
  void promotePending(std::size_t index);
  void promoteClient(std::size_t index);
  void serviceClient(int client);
  void flushClient(int client);
  void dropClient(int client);
  void flushPeer(Rank rank);
  void enqueueToPeer(Rank rank, const Frame& frame);
  void markLost(Rank rank, const char* why);
  /// Zero the lost rank's `fleet.r<N>.*` gauges and reset its FleetHealth
  /// so a reconnecting worker (which gets a fresh rank) leaves no stale
  /// readings behind under the old keys.
  void retireFleetTelemetry(Rank rank);
  [[nodiscard]] std::optional<Message> takeMatching(Rank source, int tag);
  void checkMaster(Rank at, const char* what) const;

  Options options_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Peer>> peers_;        ///< index = rank - 1
  std::vector<PendingPeer> pending_;                ///< accepted, awaiting Hello
  std::vector<std::unique_ptr<ClientPeer>> clients_;  ///< index = client id - 1
  std::deque<Message> inbox_;
  std::deque<ClientRequest> clientInbox_;
  std::optional<std::pair<int, std::vector<std::byte>>> greeting_;
  std::uint64_t messagesSent_ = 0;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t messagesReceived_ = 0;
  std::uint64_t bytesReceived_ = 0;
  std::uint64_t framesSent_ = 0;
  std::uint64_t framesReceived_ = 0;
  std::uint64_t decodeErrors_ = 0;
  NetTelemetry tel_;
};

/// Worker-side TCP transport: connects to a TcpCommWorld master, performs
/// the handshake, and then behaves as the assigned rank.  recv() delivers
/// master messages (source 0) and throws ConnectionLost when the master
/// goes away, which the worker CLI uses to drive reconnection.
///
/// Heartbeats to the master are sent from a small background thread so
/// they keep flowing while the worker is busy inside a long task — a
/// healthy-but-slow worker must not look dead to the master.
class TcpWorkerTransport final : public Transport {
 public:
  using Options = TcpWorkerOptions;

  /// Connect + handshake (throws std::runtime_error / ProtocolError /
  /// ConnectionLost on failure), then start the heartbeat thread.
  TcpWorkerTransport(const std::string& host, std::uint16_t port, Options options = {});
  ~TcpWorkerTransport() override;

  TcpWorkerTransport(const TcpWorkerTransport&) = delete;
  TcpWorkerTransport& operator=(const TcpWorkerTransport&) = delete;

  /// Rank assigned by the master in the Welcome.
  [[nodiscard]] Rank rank() const noexcept { return rank_; }

  /// Install the callback the heartbeat thread polls for application-level
  /// stats; each beat then carries a TelemetrySnapshot to the master.  The
  /// callback must be thread-safe (it runs on the heartbeat thread while
  /// the worker executes tasks).  Passing an empty function detaches it
  /// and acts as a barrier: on return, no invocation is in flight — clear
  /// the provider before destroying whatever it captures.
  void setStatsProvider(std::function<WorkerStats()> provider);

  // -- Transport (at/from must be rank()) ---------------------------------
  [[nodiscard]] int size() const noexcept override { return worldSize_; }
  void send(Rank from, Rank to, int tag, mw::MessageBuffer payload,
            std::uint64_t traceId = 0, std::uint64_t parentSpan = 0) override;
  [[nodiscard]] Message recv(Rank at, Rank source = kAnySource, int tag = kAnyTag) override;
  [[nodiscard]] std::optional<Message> recvFor(Rank at, double timeoutSeconds,
                                               Rank source = kAnySource,
                                               int tag = kAnyTag) override;
  [[nodiscard]] std::optional<Message> tryRecv(Rank at, Rank source = kAnySource,
                                               int tag = kAnyTag) override;
  [[nodiscard]] std::uint64_t messagesSent() const override { return messagesSent_; }
  [[nodiscard]] std::uint64_t bytesSent() const override { return bytesSent_; }
  [[nodiscard]] std::uint64_t messagesReceived() const override { return messagesReceived_; }
  [[nodiscard]] std::uint64_t bytesReceived() const override { return bytesReceived_; }
  [[nodiscard]] std::uint64_t framesSent() const override { return framesSent_.load(); }
  [[nodiscard]] std::uint64_t framesReceived() const override { return framesReceived_; }
  [[nodiscard]] std::uint64_t decodeErrors() const override { return decodeErrors_; }

 private:
  void beatLoop();
  /// Worker time on the telemetry clock when attached, else monotonic.
  [[nodiscard]] double localNow() const;
  /// Blocking framed write under sendMutex_; marks the connection dead and
  /// throws ConnectionLost on failure (unless `nothrow`).
  void writeFrameLocked(const Frame& frame, bool nothrow);
  /// Poll + read raw bytes into the decoder for at most `timeoutSeconds`
  /// without dispatching frames (the handshake pulls its Welcome out by
  /// hand).  Throws ConnectionLost when the socket closes or errors.
  void fill(double timeoutSeconds);
  /// fill(), then dispatch every decoded frame (messages to the inbox,
  /// heartbeats to lastHeard_); handshake frames after registration are a
  /// protocol violation.
  void readSome(double timeoutSeconds);
  [[nodiscard]] std::optional<Message> takeMatching(Rank source, int tag);
  void checkSelf(Rank r, const char* what) const;

  Options options_;
  Socket sock_;
  FrameDecoder decoder_;
  std::deque<Message> inbox_;
  Rank rank_ = -1;
  int worldSize_ = 0;
  double lastHeard_ = 0.0;
  std::uint64_t messagesSent_ = 0;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t messagesReceived_ = 0;
  std::uint64_t bytesReceived_ = 0;
  std::uint64_t framesReceived_ = 0;
  std::uint64_t decodeErrors_ = 0;
  NetTelemetry tel_;

  // Written by both the user thread and the heartbeat thread.
  std::atomic<std::uint64_t> framesSent_{0};
  std::atomic<std::uint64_t> rawBytesIn_{0};
  std::atomic<std::uint64_t> rawBytesOut_{0};
  std::atomic<std::uint64_t> atomicMessagesIn_{0};
  std::atomic<std::uint64_t> atomicMessagesOut_{0};
  std::atomic<std::uint32_t> inboxDepth_{0};
  std::atomic<double> lastMasterBeat_{0.0};       ///< master-clock stamp
  std::atomic<double> lastMasterBeatLocal_{0.0};  ///< our clock at arrival
  std::mutex providerMutex_;
  std::function<WorkerStats()> statsProvider_;

  std::mutex sendMutex_;
  std::atomic<bool> dead_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stopMutex_;
  std::condition_variable stopCv_;
  std::thread beat_;
};

/// Delay before retry `attempt` (1-based) of a backoff loop: the classic
/// doubling schedule (initialBackoffSeconds * 2^(attempt-1), capped at 5 s)
/// scaled by a deterministic jitter factor in [0.5, 1.5) hashed from
/// (jitterSeed, attempt).  Seeding by rank decorrelates a fleet that lost
/// its master simultaneously — without jitter every worker would retry on
/// the same schedule and thundering-herd the accept loop on restart.  Pure
/// function of its arguments, so tests can pin the exact sequence.
[[nodiscard]] double backoffDelaySeconds(int attempt, double initialBackoffSeconds,
                                         std::uint64_t jitterSeed);

/// Construct a TcpWorkerTransport, retrying on the jittered doubling
/// schedule of backoffDelaySeconds() (seeded by `jitterSeed`); `attempts`
/// tries.  Rethrows the final failure.
[[nodiscard]] std::unique_ptr<TcpWorkerTransport> connectWithBackoff(
    const std::string& host, std::uint16_t port, int attempts, double initialBackoffSeconds,
    const TcpWorkerTransport::Options& options = {}, std::uint64_t jitterSeed = 0);

}  // namespace sfopt::net
