#include "md/forces.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace sfopt::md {

namespace {

/// Accumulate a pairwise force f on sites i (+f) and j (-f) and its virial.
struct PairAccumulator {
  WaterSystem& sys;
  double virial = 0.0;

  void apply(int i, int j, const Vec3& rij, const Vec3& f) {
    sys.forces[static_cast<std::size_t>(i)] += f;
    sys.forces[static_cast<std::size_t>(j)] -= f;
    virial += dot(rij, f);
  }
};

}  // namespace

namespace {

/// Shared per-pair nonbonded kernel and the intramolecular terms; the two
/// computeForces overloads differ only in how nonbonded pairs are
/// enumerated.
struct NonbondedKernel {
  WaterSystem& sys;
  PairAccumulator& acc;
  ForceResult& out;
  double rc;
  double rc2;
  double s2;
  double eps;
  double ljErc;
  double ljFrc;

  void operator()(int i, int j) const {
    const Vec3 rij = sys.box().minimumImage(sys.positions[static_cast<std::size_t>(i)],
                                            sys.positions[static_cast<std::size_t>(j)]);
    const double r2 = normSquared(rij);
    if (r2 >= rc2) return;
    const double r = std::sqrt(r2);

    // Coulomb, force-shifted: V = C q q (1/r - 1/rc + (r - rc)/rc^2).
    const double qq = kCoulomb * sys.chargeOf(i) * sys.chargeOf(j);
    if (qq != 0.0) {
      const double e = qq * (1.0 / r - 1.0 / rc + (r - rc) / rc2);
      const double fMag = qq * (1.0 / r2 - 1.0 / rc2);  // -dV/dr
      out.coulomb += e;
      acc.apply(i, j, rij, rij * (fMag / r));
    }

    // Lennard-Jones on O-O pairs only, force-shifted.
    if (sys.speciesOf(i) == Species::Oxygen && sys.speciesOf(j) == Species::Oxygen) {
      const double inv2 = s2 / r2;
      const double inv6 = inv2 * inv2 * inv2;
      const double inv12 = inv6 * inv6;
      const double e = 4.0 * eps * (inv12 - inv6);
      const double fOverR = 24.0 * eps * (2.0 * inv12 - inv6) / r2;
      const double eShifted = e - ljErc + ljFrc * (r - rc);
      const double fMag = fOverR * r - ljFrc;  // force-shift
      out.lennardJones += eShifted;
      acc.apply(i, j, rij, rij * (fMag / r));
    }
  }
};

/// Intramolecular bonds and angle; identical in both overloads.
void intramolecularForces(WaterSystem& sys, PairAccumulator& acc, ForceResult& out) {
  const IntramolecularConstants& c = sys.intramolecular();
  for (int m = 0; m < sys.molecules(); ++m) {
    const int o = m * kSitesPerMolecule;
    const int h1 = o + 1;
    const int h2 = o + 2;
    for (int h : {h1, h2}) {
      const Vec3 d = sys.positions[static_cast<std::size_t>(h)] -
                     sys.positions[static_cast<std::size_t>(o)];
      const double r = norm(d);
      const double dr = r - c.bondR0;
      out.intramolecular += c.bondK * dr * dr;
      const double fMag = -2.0 * c.bondK * dr;  // on the H, along +d
      acc.apply(h, o, d, d * (fMag / r));
    }
    // Angle H1-O-H2.
    const Vec3 a = sys.positions[static_cast<std::size_t>(h1)] -
                   sys.positions[static_cast<std::size_t>(o)];
    const Vec3 b = sys.positions[static_cast<std::size_t>(h2)] -
                   sys.positions[static_cast<std::size_t>(o)];
    const double ra = norm(a);
    const double rb = norm(b);
    double cosT = dot(a, b) / (ra * rb);
    cosT = std::clamp(cosT, -1.0, 1.0);
    const double theta = std::acos(cosT);
    const double dTheta = theta - c.angleTheta0;
    out.intramolecular += c.angleK * dTheta * dTheta;
    const double sinT = std::sqrt(std::max(1.0 - cosT * cosT, 1e-12));
    const double coeff = 2.0 * c.angleK * dTheta / sinT;  // dV/d(cos theta)
    const Vec3 dCosDa = (b * (1.0 / (ra * rb))) - (a * (cosT / (ra * ra)));
    const Vec3 dCosDb = (a * (1.0 / (ra * rb))) - (b * (cosT / (rb * rb)));
    const Vec3 fH1 = coeff * dCosDa;
    const Vec3 fH2 = coeff * dCosDb;
    sys.forces[static_cast<std::size_t>(h1)] += fH1;
    sys.forces[static_cast<std::size_t>(h2)] += fH2;
    sys.forces[static_cast<std::size_t>(o)] -= fH1 + fH2;
    acc.virial += dot(a, fH1) + dot(b, fH2);
  }
}

NonbondedKernel makeKernel(WaterSystem& sys, PairAccumulator& acc, ForceResult& out) {
  const WaterParameters& p = sys.parameters();
  const double rc = sys.cutoff();
  const double rc2 = rc * rc;
  const double s2 = p.sigma * p.sigma;
  // Shifted-force terms at the cutoff.
  const double inv2 = s2 / rc2;
  const double inv6 = inv2 * inv2 * inv2;
  const double inv12 = inv6 * inv6;
  const double ljErc = 4.0 * p.epsilon * (inv12 - inv6);
  const double ljFrcOverRc = 24.0 * p.epsilon * (2.0 * inv12 - inv6) / rc2;
  return NonbondedKernel{sys, acc, out, rc, rc2, s2, p.epsilon, ljErc, ljFrcOverRc * rc};
}

}  // namespace

ForceResult computeForces(WaterSystem& sys) {
  ForceResult out;
  for (auto& f : sys.forces) f = Vec3{};
  PairAccumulator acc{sys};
  const NonbondedKernel kernel = makeKernel(sys, acc, out);
  const int n = sys.sites();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (sys.moleculeOf(i) == sys.moleculeOf(j)) continue;
      kernel(i, j);
    }
  }
  intramolecularForces(sys, acc, out);
  out.potential = out.lennardJones + out.coulomb + out.intramolecular;
  out.virial = acc.virial;
  return out;
}

ForceResult computeForces(WaterSystem& sys, const NeighborList& list) {
  ForceResult out;
  for (auto& f : sys.forces) f = Vec3{};
  PairAccumulator acc{sys};
  const NonbondedKernel kernel = makeKernel(sys, acc, out);
  for (const auto& [i, j] : list.pairs()) {
    kernel(i, j);
  }
  intramolecularForces(sys, acc, out);
  out.potential = out.lennardJones + out.coulomb + out.intramolecular;
  out.virial = acc.virial;
  return out;
}

TailCorrections ljTailCorrections(const WaterSystem& sys) {
  const WaterParameters& p = sys.parameters();
  const double rc = sys.cutoff();
  const double rho = static_cast<double>(sys.molecules()) / sys.box().volume();
  const double sr3 = std::pow(p.sigma / rc, 3.0);
  const double sr9 = sr3 * sr3 * sr3;
  const double s3 = p.sigma * p.sigma * p.sigma;
  TailCorrections t;
  t.energyKcalPerMol = 8.0 / 3.0 * std::numbers::pi * rho *
                       static_cast<double>(sys.molecules()) * p.epsilon * s3 *
                       (sr9 / 3.0 - sr3);
  t.pressureAtm = 16.0 / 3.0 * std::numbers::pi * rho * rho * p.epsilon * s3 *
                  (2.0 / 3.0 * sr9 - sr3) * kKcalPerMolPerA3InAtm;
  return t;
}

double pressureAtm(const WaterSystem& sys, double virialKcalPerMol) {
  const double volume = sys.box().volume();
  const double kinetic = sys.kineticEnergy();
  const double pKcal = (2.0 * kinetic + virialKcalPerMol) / (3.0 * volume);
  return pKcal * kKcalPerMolPerA3InAtm;
}

}  // namespace sfopt::md
