# Empty dependencies file for global_search.
# This may be replaced when dependencies are built.
