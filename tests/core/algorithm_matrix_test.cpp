// Property-style sweep: every algorithm x noise level x test function
// must satisfy the structural invariants of an optimization run —
// regardless of whether it converges well.  This is the broad safety net
// under the focused behavioural tests.

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithms.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;

enum class Algo { Det, Mn, Anderson, Pc, PcMn };

const char* name(Algo a) {
  switch (a) {
    case Algo::Det: return "DET";
    case Algo::Mn: return "MN";
    case Algo::Anderson: return "Anderson";
    case Algo::Pc: return "PC";
    case Algo::PcMn: return "PC+MN";
  }
  return "?";
}

enum class Fn { Sphere, Rosenbrock, Powell };

struct MatrixCase {
  Algo algo;
  Fn fn;
  double sigma0;
};

std::string caseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  const auto& c = info.param;
  std::string out = name(c.algo);
  out += c.fn == Fn::Sphere ? "_sphere" : (c.fn == Fn::Rosenbrock ? "_rosen" : "_powell");
  out += "_s" + std::to_string(static_cast<int>(c.sigma0));
  // gtest names must be alphanumeric.
  for (char& ch : out) {
    if (ch == '+') ch = 'p';
  }
  return out;
}

class AlgorithmMatrix : public ::testing::TestWithParam<MatrixCase> {};

core::OptimizationResult runCase(const MatrixCase& c, const noise::StochasticObjective& obj,
                                 std::span<const core::Point> start) {
  core::TerminationCriteria term;
  term.tolerance = 1e-4;
  term.maxIterations = 150;
  term.maxSamples = 150'000;
  term.maxTime = 100'000.0;
  switch (c.algo) {
    case Algo::Det: {
      core::DetOptions o;
      o.common.termination = term;
      o.common.recordTrace = true;
      return core::runDeterministic(obj, start, o);
    }
    case Algo::Mn: {
      core::MaxNoiseOptions o;
      o.common.termination = term;
      o.common.recordTrace = true;
      return core::runMaxNoise(obj, start, o);
    }
    case Algo::Anderson: {
      core::AndersonOptions o;
      o.k1 = 16.0;
      o.common.termination = term;
      o.common.recordTrace = true;
      return core::runAnderson(obj, start, o);
    }
    case Algo::Pc:
    case Algo::PcMn: {
      core::PCOptions o;
      o.common.termination = term;
      o.common.recordTrace = true;
      o.maxNoiseGate = c.algo == Algo::PcMn;
      return core::runPointToPoint(obj, start, o);
    }
  }
  throw std::logic_error("unreachable");
}

TEST_P(AlgorithmMatrix, StructuralInvariantsHold) {
  const MatrixCase c = GetParam();
  const std::size_t dim = c.fn == Fn::Sphere ? 3 : 4;
  noise::NoisyFunction obj = [&] {
    switch (c.fn) {
      case Fn::Sphere: return test::noisySphere(dim, c.sigma0, 1000);
      case Fn::Rosenbrock: return test::noisyRosenbrock(dim, c.sigma0, 1001);
      case Fn::Powell: return test::noisyPowell(c.sigma0, 1002);
    }
    throw std::logic_error("unreachable");
  }();
  const auto start = test::randomStart(dim, -3.0, 3.0, 17, 5);
  const auto res = runCase(c, obj, start);

  // 1. Termination is honest.
  switch (res.reason) {
    case core::TerminationReason::Converged:
      break;  // spread check happens on live estimates; nothing to recheck
    case core::TerminationReason::IterationLimit:
      EXPECT_GE(res.iterations, 150);
      break;
    case core::TerminationReason::SampleLimit:
      EXPECT_GE(res.totalSamples, 150'000);
      break;
    case core::TerminationReason::TimeLimit:
      EXPECT_GE(res.elapsedTime, 100'000.0);
      break;
  }

  // 2. The answer is well-formed.
  ASSERT_EQ(res.best.size(), dim);
  for (double v : res.best) EXPECT_TRUE(std::isfinite(v));
  EXPECT_TRUE(std::isfinite(res.bestEstimate));
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_GE(*res.bestTrue, 0.0);  // all test functions are non-negative

  // 3. Move counters account for every iteration.
  const auto& k = res.counters;
  EXPECT_EQ(k.reflections + k.expansions + k.contractions + k.collapses, res.iterations);

  // 4. Trace is one record per iteration with monotone time and samples.
  ASSERT_EQ(static_cast<std::int64_t>(res.trace.size()), res.iterations);
  double lastTime = -1.0;
  std::int64_t lastSamples = -1;
  for (const auto& r : res.trace.steps()) {
    EXPECT_GE(r.time, lastTime);
    EXPECT_GE(r.totalSamples, lastSamples);
    lastTime = r.time;
    lastSamples = r.totalSamples;
  }
  EXPECT_LE(lastTime, res.elapsedTime + 1e-9);
  EXPECT_LE(lastSamples, res.totalSamples);

  // (No monotonicity claim on bestEstimate: additional sampling corrects
  // lucky-low estimates *upward* — that self-correction is the point of
  // the stochastic variants, not a defect.)
}

std::vector<MatrixCase> allCases() {
  std::vector<MatrixCase> cases;
  for (Algo a : {Algo::Det, Algo::Mn, Algo::Anderson, Algo::Pc, Algo::PcMn}) {
    for (Fn f : {Fn::Sphere, Fn::Rosenbrock, Fn::Powell}) {
      for (double s : {0.0, 1.0, 100.0}) {
        cases.push_back({a, f, s});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, AlgorithmMatrix, ::testing::ValuesIn(allCases()),
                         caseName);

}  // namespace
