#include "noise/heteroscedastic_function.hpp"

#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "core/noise_probe.hpp"
#include "stats/welford.hpp"
#include "testfunctions/functions.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using noise::HeteroscedasticFunction;

/// Sphere with noise that grows with distance from the origin: quiet near
/// the optimum, loud far away.
HeteroscedasticFunction distanceNoisySphere(std::size_t dim, double base, double slope,
                                            std::uint64_t seed = 0x6e7) {
  HeteroscedasticFunction::Options o;
  o.seed = seed;
  return HeteroscedasticFunction(
      dim, [](std::span<const double> x) { return testfunctions::sphere(x); },
      [base, slope](std::span<const double> x) {
        double r2 = 0.0;
        for (double v : x) r2 += v * v;
        return base + slope * std::sqrt(r2);
      },
      o);
}

TEST(Heteroscedastic, NoiseScaleTracksLocation) {
  auto obj = distanceNoisySphere(2, 0.5, 2.0);
  EXPECT_DOUBLE_EQ(*obj.noiseScale(std::vector<double>{0.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(*obj.noiseScale(std::vector<double>{3.0, 4.0}), 0.5 + 10.0);
}

TEST(Heteroscedastic, SampleVarianceMatchesDeclaredScale) {
  auto obj = distanceNoisySphere(2, 1.0, 1.0);
  const std::vector<double> far{3.0, 4.0};  // sigma0 = 6
  stats::Welford w;
  for (std::uint64_t i = 0; i < 40000; ++i) w.add(obj.sample(far, {1, i}));
  EXPECT_NEAR(w.stddev(), 6.0, 0.15);
}

TEST(Heteroscedastic, ProbeRecoversLocalScale) {
  auto obj = distanceNoisySphere(2, 1.0, 1.0);
  const auto near = core::probeNoise(obj, {0.0, 0.0}, 4000);
  const auto far = core::probeNoise(obj, {3.0, 4.0}, 4000);
  EXPECT_NEAR(near.sigma0Estimate, 1.0, 0.1);
  EXPECT_NEAR(far.sigma0Estimate, 6.0, 0.4);
  EXPECT_NEAR(near.meanEstimate, 0.0, 0.1);
  EXPECT_NEAR(far.meanEstimate, 25.0, 0.4);
}

TEST(Heteroscedastic, ProbeValidation) {
  auto obj = distanceNoisySphere(2, 1.0, 1.0);
  EXPECT_THROW((void)core::probeNoise(obj, {0.0, 0.0}, 1), std::invalid_argument);
  EXPECT_THROW((void)core::probeNoise(obj, {0.0}, 100), std::invalid_argument);
}

TEST(Heteroscedastic, ProbeAccountsForSampleDuration) {
  // With dt = 4, per-sample sd is sigma0/2; the probe must rescale back.
  HeteroscedasticFunction::Options o;
  o.sampleDuration = 4.0;
  HeteroscedasticFunction obj(
      2, [](std::span<const double>) { return 0.0; },
      [](std::span<const double>) { return 8.0; }, o);
  const auto probe = core::probeNoise(obj, {0.0, 0.0}, 4000);
  EXPECT_NEAR(probe.sigma0Estimate, 8.0, 0.5);
  EXPECT_DOUBLE_EQ(probe.sampledTime, 16000.0);
}

TEST(Heteroscedastic, MnStillConverges) {
  // The algorithms never see sigma0(x); estimated sigmas must carry them
  // through the location-dependent noise.
  auto obj = distanceNoisySphere(2, 0.5, 1.5, 99);
  core::MaxNoiseOptions mn;
  mn.common.termination.tolerance = 1e-3;
  mn.common.termination.maxIterations = 300;
  mn.common.termination.maxSamples = 300'000;
  const auto res = core::runMaxNoise(obj, test::simpleStart(2, -3.0, 1.0), mn);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1.0);
}

TEST(Heteroscedastic, PcStillConverges) {
  auto obj = distanceNoisySphere(2, 0.5, 1.5, 98);
  core::PCOptions pc;
  pc.common.termination.tolerance = 1e-3;
  pc.common.termination.maxIterations = 300;
  pc.common.termination.maxSamples = 300'000;
  const auto res = core::runPointToPoint(obj, test::simpleStart(2, -3.0, 1.0), pc);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1.0);
}

TEST(Heteroscedastic, ExactSigmaModeUsesDeclaredScale) {
  auto obj = distanceNoisySphere(2, 2.0, 0.0);  // constant sigma0 = 2
  core::SamplingContext ctx(obj, {.sigmaMode = core::SigmaMode::Exact});
  auto v = ctx.createVertex({1.0, 1.0}, 16);
  EXPECT_DOUBLE_EQ(ctx.sigma(*v), 2.0 / 4.0);  // sigma0 / sqrt(16)
}

}  // namespace
