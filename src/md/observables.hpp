#pragma once

#include <cstdint>
#include <vector>

#include "md/system.hpp"

namespace sfopt::md {

/// Which radial distribution function a curve describes.
enum class PairKind : std::uint8_t { OO = 0, OH = 1, HH = 2 };

/// A sampled g(r) curve on a uniform r grid.
struct RdfCurve {
  std::vector<double> r;  ///< bin centers, Angstrom
  std::vector<double> g;  ///< g(r)
};

/// Accumulates intermolecular pair-distance histograms over frames and
/// normalizes them into the three water radial distribution functions
/// (g_OO, g_OH, g_HH) that enter the paper's cost function (eq. 3.5).
class RdfAccumulator {
 public:
  RdfAccumulator(double rMax, int bins);

  /// Bin all intermolecular site pairs of the current frame.
  void addFrame(const WaterSystem& sys);

  [[nodiscard]] int frames() const noexcept { return frames_; }

  /// Normalized g(r) for a pair kind.  Requires at least one frame.
  [[nodiscard]] RdfCurve curve(PairKind kind, const WaterSystem& sys) const;

 private:
  double rMax_;
  double dr_;
  int bins_;
  int frames_ = 0;
  std::vector<std::uint64_t> histOO_;
  std::vector<std::uint64_t> histOH_;
  std::vector<std::uint64_t> histHH_;
};

/// Accumulates oxygen mean-square displacement against the starting frame
/// and extracts the self-diffusion coefficient via the Einstein relation
/// D = MSD / (6 t), reported in cm^2/s as the paper's tables do.
class MsdAccumulator {
 public:
  explicit MsdAccumulator(const WaterSystem& sys);

  /// Record the current frame at simulated time tPs.
  void addFrame(const WaterSystem& sys, double tPs);

  /// Least-squares slope of MSD(t) over the recorded frames, converted to
  /// cm^2/s.  Requires at least 2 frames.
  [[nodiscard]] double diffusionCm2PerS() const;

  [[nodiscard]] const std::vector<double>& times() const noexcept { return times_; }
  [[nodiscard]] const std::vector<double>& msd() const noexcept { return msd_; }

 private:
  std::vector<Vec3> start_;
  std::vector<double> times_;
  std::vector<double> msd_;
};

/// Root-mean-square difference between a sampled curve and a reference
/// curve on the same grid over [rMin, rMax] — the curve-to-scalar
/// reduction of eq. 3.5.
[[nodiscard]] double rdfResidual(const RdfCurve& sampled, const RdfCurve& reference,
                                 double rMin, double rMax);

}  // namespace sfopt::md
