#include "arg_parser.hpp"

#include <gtest/gtest.h>

namespace {

using sfopt::tools::ArgError;
using sfopt::tools::Args;

TEST(ArgParser, CommandAndFlags) {
  const auto a = Args::parse({"optimize", "--dim", "4", "--sigma0=2.5", "--mw"});
  EXPECT_EQ(a.command(), "optimize");
  EXPECT_EQ(a.getInt("dim", 0), 4);
  EXPECT_DOUBLE_EQ(a.getDouble("sigma0", 0.0), 2.5);
  EXPECT_TRUE(a.getBool("mw", false));
  EXPECT_FALSE(a.has("nope"));
}

TEST(ArgParser, EmptyInput) {
  const auto a = Args::parse({});
  EXPECT_TRUE(a.command().empty());
  EXPECT_TRUE(a.positional().empty());
}

TEST(ArgParser, PositionalArguments) {
  const auto a = Args::parse({"cmd", "file1", "--flag", "v", "file2"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "file1");
  EXPECT_EQ(a.positional()[1], "file2");
}

TEST(ArgParser, SwitchAtEndOfLine) {
  const auto a = Args::parse({"cmd", "--verbose"});
  EXPECT_TRUE(a.getBool("verbose", false));
}

TEST(ArgParser, SwitchFollowedByFlag) {
  const auto a = Args::parse({"cmd", "--verbose", "--dim", "3"});
  EXPECT_TRUE(a.getBool("verbose", false));
  EXPECT_EQ(a.getInt("dim", 0), 3);
}

TEST(ArgParser, NegativeNumbersAsValues) {
  const auto a = Args::parse({"cmd", "--lo=-5.5"});
  EXPECT_DOUBLE_EQ(a.getDouble("lo", 0.0), -5.5);
}

TEST(ArgParser, DoubleList) {
  const auto a = Args::parse({"cmd", "--start", "1.5,-2,3e2"});
  const auto xs = a.getDoubleList("start", {});
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[0], 1.5);
  EXPECT_DOUBLE_EQ(xs[1], -2.0);
  EXPECT_DOUBLE_EQ(xs[2], 300.0);
}

TEST(ArgParser, Fallbacks) {
  const auto a = Args::parse({"cmd"});
  EXPECT_EQ(a.getString("name", "dflt"), "dflt");
  EXPECT_EQ(a.getInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(a.getDouble("x", 1.5), 1.5);
  EXPECT_FALSE(a.getBool("b", false));
  const auto xs = a.getDoubleList("v", {7.0});
  ASSERT_EQ(xs.size(), 1u);
}

TEST(ArgParser, ConversionErrors) {
  const auto a = Args::parse({"cmd", "--n", "abc", "--x", "1.5zz", "--b", "maybe",
                              "--v", "1,two"});
  EXPECT_THROW((void)a.getInt("n", 0), ArgError);
  EXPECT_THROW((void)a.getDouble("x", 0.0), ArgError);
  EXPECT_THROW((void)a.getBool("b", false), ArgError);
  EXPECT_THROW((void)a.getDoubleList("v", {}), ArgError);
}

TEST(ArgParser, RequiredFlag) {
  const auto a = Args::parse({"cmd", "--present", "x"});
  EXPECT_EQ(a.requireString("present"), "x");
  EXPECT_THROW((void)a.requireString("absent"), ArgError);
}

TEST(ArgParser, UnknownFlagRejectedWhenDeclared) {
  EXPECT_THROW((void)Args::parse({"cmd", "--bogus", "1"}, {"dim", "sigma0"}), ArgError);
  EXPECT_NO_THROW((void)Args::parse({"cmd", "--dim", "1"}, {"dim", "sigma0"}));
}

TEST(ArgParser, BareDoubleDashRejected) {
  EXPECT_THROW((void)Args::parse({"cmd", "--"}), ArgError);
}

}  // namespace
