#include "mw/message_buffer.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace sfopt::mw {

MessageBuffer::MessageBuffer(std::vector<std::byte> wire) : bytes_(std::move(wire)) {}

void MessageBuffer::putTag(Tag t) {
  bytes_.push_back(static_cast<std::byte>(t));
}

void MessageBuffer::expectTag(Tag t) {
  if (cursor_ >= bytes_.size()) {
    throw std::runtime_error("MessageBuffer: unpack past end of buffer");
  }
  const auto got = static_cast<Tag>(bytes_[cursor_]);
  ++cursor_;
  if (got != t) {
    throw std::runtime_error("MessageBuffer: type/order mismatch while unpacking");
  }
}

void MessageBuffer::putU64(std::uint64_t v) {
  // Fixed little-endian layout: buffers cross process (and potentially
  // machine) boundaries over TCP, so the encoding must not depend on host
  // byte order.  On LE hosts this emits the same bytes memcpy used to.
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint64_t MessageBuffer::getU64() {
  if (cursor_ + 8 > bytes_.size()) {
    throw std::runtime_error("MessageBuffer: unpack past end of buffer");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(bytes_[cursor_ + i]))
         << (8 * i);
  }
  cursor_ += 8;
  return v;
}

std::size_t MessageBuffer::remaining() const noexcept {
  return bytes_.size() - cursor_;
}

void MessageBuffer::pack(double v) {
  putTag(Tag::Double);
  putU64(std::bit_cast<std::uint64_t>(v));
}

void MessageBuffer::pack(std::int64_t v) {
  putTag(Tag::Int64);
  putU64(static_cast<std::uint64_t>(v));
}

void MessageBuffer::pack(std::uint64_t v) {
  putTag(Tag::Uint64);
  putU64(v);
}

void MessageBuffer::pack(const std::string& v) {
  putTag(Tag::String);
  putU64(v.size());
  const auto* b = reinterpret_cast<const std::byte*>(v.data());
  bytes_.insert(bytes_.end(), b, b + v.size());
}

void MessageBuffer::pack(std::span<const double> v) {
  putTag(Tag::DoubleVector);
  putU64(v.size());
  for (const double d : v) putU64(std::bit_cast<std::uint64_t>(d));
}

double MessageBuffer::unpackDouble() {
  expectTag(Tag::Double);
  return std::bit_cast<double>(getU64());
}

std::int64_t MessageBuffer::unpackInt64() {
  expectTag(Tag::Int64);
  return static_cast<std::int64_t>(getU64());
}

std::uint64_t MessageBuffer::unpackUint64() {
  expectTag(Tag::Uint64);
  return getU64();
}

std::string MessageBuffer::unpackString() {
  expectTag(Tag::String);
  const std::uint64_t n = getU64();
  // Validate the length prefix against the bytes actually present before
  // allocating: a corrupted or hostile prefix must not drive a huge
  // allocation.
  if (n > remaining()) {
    throw std::runtime_error("MessageBuffer: string length prefix exceeds buffer");
  }
  std::string v(static_cast<std::size_t>(n), '\0');
  std::memcpy(v.data(), bytes_.data() + cursor_, static_cast<std::size_t>(n));
  cursor_ += static_cast<std::size_t>(n);
  return v;
}

std::vector<double> MessageBuffer::unpackDoubleVector() {
  expectTag(Tag::DoubleVector);
  const std::uint64_t n = getU64();
  if (n > remaining() / 8) {
    throw std::runtime_error("MessageBuffer: vector length prefix exceeds buffer");
  }
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(std::bit_cast<double>(getU64()));
  return v;
}

}  // namespace sfopt::mw
