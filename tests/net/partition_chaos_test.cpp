#include "net/chaos_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithms.hpp"
#include "mw/mw_driver.hpp"
#include "mw/mw_worker.hpp"
#include "mw/parallel_runner.hpp"
#include "mw/sampling_service.hpp"
#include "net/tcp_transport.hpp"
#include "noise/noisy_function.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"
#include "testfunctions/functions.hpp"

// Partition-chaos tests (§9.10): a ChaosProxy sits between master and
// workers and injects the classic fabric faults — full partitions,
// one-way blackholes, write stalls, mid-frame stalls, delay and
// duplication — under a deterministic seeded schedule.  The invariants:
// one-way silence trips a timeout on BOTH ends (not just the receiving
// one), a reconnecting worker gets a fresh rank while the stale rank's
// in-flight shards requeue exactly once, duplicated/late frames are
// discarded without corrupting MWDriver bookkeeping, and every recovered
// run stays bitwise identical to the solo run.

namespace {

using namespace sfopt;
using namespace sfopt::net;
using namespace std::chrono_literals;

mw::MessageBuffer payload(std::int64_t v) {
  mw::MessageBuffer b;
  b.pack(v);
  return b;
}

mw::MessageBuffer bigPayload(std::size_t bytes) {
  mw::MessageBuffer b;
  b.pack(std::string(bytes, 'x'));
  return b;
}

/// Dial the master THROUGH the proxy while the master polls the handshake.
std::unique_ptr<TcpWorkerTransport> joinViaProxy(TcpCommWorld& master, const ChaosProxy& proxy,
                                                 TcpWorkerTransport::Options opts = {}) {
  std::unique_ptr<TcpWorkerTransport> worker;
  std::thread t([&] {
    worker = std::make_unique<TcpWorkerTransport>("127.0.0.1", proxy.port(), opts);
  });
  (void)master.waitForWorkers(master.liveWorkers() + 1, 10.0);
  t.join();
  return worker;
}

/// Toy MW worker over a real transport: doubles an integer.
class DoubleWorker final : public mw::MWWorker {
 public:
  using MWWorker::MWWorker;

 protected:
  void executeTask(mw::MessageBuffer& in, mw::MessageBuffer& out) override {
    out.pack(in.unpackInt64() * 2);
  }
};

TEST(ChaosProxy, RelaysFaithfullyUnderTheNoneScenario) {
  TcpCommWorld master(0);
  ChaosProxy proxy("127.0.0.1", master.port(), ChaosSchedule::preset("none", 1));
  auto worker = joinViaProxy(master, proxy);
  EXPECT_EQ(worker->rank(), 1);
  EXPECT_EQ(proxy.activeConnections(), 1);

  master.send(0, 1, 5, payload(123));
  EXPECT_EQ(worker->recv(1, 0, 5).payload.unpackInt64(), 123);
  worker->send(1, 0, 6, payload(456));
  EXPECT_EQ(master.recv(0, 1, 6).payload.unpackInt64(), 456);

  const auto c = proxy.counters();
  EXPECT_EQ(c.connectionsAccepted, 1u);
  EXPECT_GE(c.framesForwarded, 4u);  // hello, welcome, and the two messages
  EXPECT_EQ(c.framesDropped, 0u);
  EXPECT_EQ(c.framesDuplicated, 0u);
}

TEST(ChaosProxy, UnknownPresetIsRefused) {
  EXPECT_THROW((void)ChaosSchedule::preset("no-such-scenario", 1), std::invalid_argument);
}

TEST(ChaosProxy, SameSeedSameScheduleIsReplayable) {
  const ChaosSchedule a = ChaosSchedule::preset("partition-heal", 42);
  const ChaosSchedule b = ChaosSchedule::preset("partition-heal", 42);
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].atSeconds, b.events[i].atSeconds);
    EXPECT_EQ(static_cast<int>(a.events[i].kind), static_cast<int>(b.events[i].kind));
  }
}

// -- Scenario (a): one-way silence trips a timeout on both ends -------------

TEST(PartitionChaos, BlackholeUpTripsMasterHeartbeatTimeout) {
  // Worker->master frames vanish while master->worker still flows: the
  // worker looks healthy to itself, but the master must declare it lost
  // on recv-silence within the heartbeat-timeout bound.
  TcpCommWorld::Options opts;
  opts.heartbeatIntervalSeconds = 0.05;
  opts.heartbeatTimeoutSeconds = 0.4;
  TcpCommWorld master(0, opts);
  ChaosProxy proxy("127.0.0.1", master.port());

  TcpWorkerTransport::Options wopts;
  wopts.heartbeatIntervalSeconds = 0.05;
  auto worker = joinViaProxy(master, proxy, wopts);

  ChaosEvent bh;
  bh.kind = ChaosEvent::Kind::Blackhole;
  bh.dir = ChaosDir::Up;
  proxy.inject(bh);

  const auto lost = master.recvFor(0, 5.0, kAnySource, kTagWorkerLost);
  ASSERT_TRUE(lost.has_value()) << "master never declared the silenced worker lost";
  EXPECT_EQ(lost->source, 1);
  EXPECT_EQ(master.liveWorkers(), 0);
  EXPECT_GT(proxy.counters().framesDropped, 0u);
}

TEST(PartitionChaos, BlackholeDownTripsWorkerMasterTimeout) {
  // Master->worker frames vanish while worker->master still flows: the
  // worker must notice the silence via --master-timeout and throw
  // ConnectionLost instead of waiting forever.
  TcpCommWorld::Options opts;
  opts.heartbeatIntervalSeconds = 0.05;
  TcpCommWorld master(0, opts);
  ChaosProxy proxy("127.0.0.1", master.port());

  TcpWorkerTransport::Options wopts;
  wopts.heartbeatIntervalSeconds = 0.05;
  wopts.masterTimeoutSeconds = 0.4;
  auto worker = joinViaProxy(master, proxy, wopts);

  ChaosEvent bh;
  bh.kind = ChaosEvent::Kind::Blackhole;
  bh.dir = ChaosDir::Down;
  proxy.inject(bh);

  EXPECT_THROW(
      {
        const auto deadline = std::chrono::steady_clock::now() + 5s;
        while (std::chrono::steady_clock::now() < deadline) {
          (void)worker->recvFor(1, 0.1, 0, 99);
        }
      },
      ConnectionLost);
}

// -- Satellite: master-side send-stall detection (half-open peer) -----------

TEST(PartitionChaos, WriteStallTripsSendStallDeadline) {
  // The proxy stops draining the master->worker direction while the
  // worker keeps heartbeating: recv-silence can never fire, and before
  // the fix the master's send buffer just grew forever.  The send-stall
  // deadline must evict the peer.
  telemetry::NoopSink sink;
  telemetry::Telemetry spine(sink);
  TcpCommWorld::Options opts;
  opts.heartbeatIntervalSeconds = 0.05;
  opts.heartbeatTimeoutSeconds = 30.0;  // recv-silence must NOT be the trigger
  opts.sendStallTimeoutSeconds = 0.4;
  opts.telemetry = &spine;
  TcpCommWorld master(0, opts);
  ChaosProxy proxy("127.0.0.1", master.port());

  TcpWorkerTransport::Options wopts;
  wopts.heartbeatIntervalSeconds = 0.05;
  auto worker = joinViaProxy(master, proxy, wopts);

  ChaosEvent stall;
  stall.kind = ChaosEvent::Kind::Stall;
  stall.dir = ChaosDir::Down;
  proxy.inject(stall);
  std::this_thread::sleep_for(50ms);  // let the proxy stop reading

  std::optional<Message> lost;
  for (int i = 0; i < 64 && !lost.has_value(); ++i) {
    master.send(0, 1, 7, bigPayload(std::size_t{1} << 20));
    lost = master.recvFor(0, 0.1, kAnySource, kTagWorkerLost);
  }
  ASSERT_TRUE(lost.has_value()) << "stalled peer was never evicted";
  EXPECT_EQ(lost->source, 1);
  EXPECT_NE(lost->payload.unpackString().find("send"), std::string::npos);
  EXPECT_GE(spine.metrics().counter("net.send_stalls").value(), 1);
  EXPECT_EQ(master.liveWorkers(), 0);
}

TEST(PartitionChaos, SendBacklogOverflowEvictsPeer) {
  // Same stall, but with a generous deadline and a tight backlog cap: the
  // unbounded-buffer half of the bug.  The cap must evict the peer before
  // the userspace send buffer outgrows it.
  telemetry::NoopSink sink;
  telemetry::Telemetry spine(sink);
  TcpCommWorld::Options opts;
  opts.heartbeatIntervalSeconds = 0.05;
  opts.heartbeatTimeoutSeconds = 30.0;
  opts.sendStallTimeoutSeconds = 30.0;  // the deadline must NOT be the trigger
  opts.maxSendBufferBytes = std::size_t{256} << 10;
  opts.telemetry = &spine;
  TcpCommWorld master(0, opts);
  ChaosProxy proxy("127.0.0.1", master.port());

  TcpWorkerTransport::Options wopts;
  wopts.heartbeatIntervalSeconds = 0.05;
  auto worker = joinViaProxy(master, proxy, wopts);

  ChaosEvent stall;
  stall.kind = ChaosEvent::Kind::Stall;
  stall.dir = ChaosDir::Down;
  proxy.inject(stall);
  std::this_thread::sleep_for(50ms);

  std::optional<Message> lost;
  for (int i = 0; i < 64 && !lost.has_value(); ++i) {
    master.send(0, 1, 7, bigPayload(std::size_t{1} << 20));
    lost = master.recvFor(0, 0.05, kAnySource, kTagWorkerLost);
  }
  ASSERT_TRUE(lost.has_value()) << "backlog overflow never evicted the peer";
  EXPECT_EQ(lost->payload.unpackString(), "send backlog overflow");
  EXPECT_GE(spine.metrics().counter("net.send_stalls").value(), 1);
}

// -- Satellite: worker-side write-deadline under a one-way partition --------

TEST(PartitionChaos, WorkerWriteStallHitsDeadlineThenReconnectsWithFreshRank) {
  // The proxy stops draining the worker->master direction while the
  // master keeps heartbeating: the worker's blocking framed write must
  // hit its deadline, surface ConnectionLost, and a reconnect (the CLI's
  // connectWithBackoff loop) must land a fresh rank after the heal.
  TcpCommWorld master(0);
  ChaosProxy proxy("127.0.0.1", master.port());

  TcpWorkerTransport::Options wopts;
  wopts.masterTimeoutSeconds = 0.5;  // doubles as the write deadline
  auto worker = joinViaProxy(master, proxy, wopts);

  ChaosEvent stall;
  stall.kind = ChaosEvent::Kind::Stall;
  stall.dir = ChaosDir::Up;
  proxy.inject(stall);
  std::this_thread::sleep_for(50ms);

  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) {
          worker->send(1, 0, 7, bigPayload(std::size_t{1} << 20));
        }
      },
      ConnectionLost);

  proxy.heal();
  std::unique_ptr<TcpWorkerTransport> fresh;
  std::thread redial([&] {
    fresh = connectWithBackoff("127.0.0.1", proxy.port(), 5, 0.05, wopts);
  });
  (void)master.waitForWorkers(2, 10.0);
  redial.join();
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->rank(), 2);  // the stale rank is never reused
}

// -- Scenario (b)+(c): reconnect-after-heal, gauge retirement, requeue-once -

TEST(PartitionChaos, ReconnectAfterHealGetsFreshRankRetiresGaugesRequeuesOnce) {
  telemetry::NoopSink sink;
  telemetry::Telemetry spine(sink);
  TcpCommWorld::Options opts;
  opts.heartbeatIntervalSeconds = 0.05;
  opts.heartbeatTimeoutSeconds = 0.5;
  opts.telemetry = &spine;
  TcpCommWorld master(0, opts);
  ChaosProxy proxy("127.0.0.1", master.port());

  // Worker 1 joins through the proxy, ships telemetry snapshots, but
  // never executes tasks — it will be partitioned away mid-task.
  TcpWorkerTransport::Options wopts;
  wopts.heartbeatIntervalSeconds = 0.05;
  auto worker1 = joinViaProxy(master, proxy, wopts);
  worker1->setStatsProvider(
      [] { return WorkerStats{/*tasksExecuted=*/7, /*tasksFailed=*/1, 0.25}; });
  std::atomic<bool> stopDrain{false};
  std::thread drain([&] {
    try {
      while (!stopDrain.load()) (void)worker1->recvFor(1, 0.02, 0, 99);
    } catch (const ConnectionLost&) {
    }
  });

  // Pump both loops until worker 1's snapshot (with an RTT estimate) lands.
  auto& reg = spine.metrics();
  bool seen = false;
  for (int i = 0; i < 200 && !seen; ++i) {
    (void)master.recvFor(0, 0.03, kAnySource, 99);
    const auto fleet = master.fleetHealth();
    seen = !fleet.empty() && fleet[0].seen && fleet[0].rttSeconds >= 0.0;
  }
  ASSERT_TRUE(seen);
  EXPECT_EQ(reg.gauge("fleet.r1.tasks_executed").value(), 7.0);
  EXPECT_DOUBLE_EQ(reg.gauge("fleet.r1.execute_ewma_seconds").value(), 0.25);

  // Worker 2 connects directly (not through the proxy) and does real work.
  std::unique_ptr<DoubleWorker> survivor;
  std::unique_ptr<TcpWorkerTransport> transport2;
  std::thread runner([&] {
    try {
      transport2 = std::make_unique<TcpWorkerTransport>("127.0.0.1", master.port(), wopts);
      survivor = std::make_unique<DoubleWorker>(*transport2, transport2->rank());
      survivor->run();
    } catch (const ConnectionLost&) {
    }
  });
  (void)master.waitForWorkers(2, 10.0);

  mw::MWDriver driver(master);
  driver.setRecvTimeout(10.0);
  const std::uint64_t id = driver.submit(payload(21));  // dispatched to rank 1

  // Partition worker 1's link mid-task: the master must declare rank 1
  // lost, requeue the shard exactly once onto rank 2, and retire the
  // fleet.r1.* gauges rather than leave them frozen at the last reading.
  ChaosEvent cut;
  cut.kind = ChaosEvent::Kind::Partition;
  proxy.inject(cut);

  auto done = driver.drain();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, id);
  EXPECT_EQ(done[0].payload.unpackInt64(), 42);
  EXPECT_EQ(driver.tasksRequeued(), 1u) << "the in-flight shard must requeue exactly once";
  EXPECT_EQ(driver.workersLost(), 1u);
  EXPECT_EQ(driver.staleResultsDiscarded(), 0u);

  EXPECT_EQ(reg.gauge("fleet.r1.tasks_executed").value(), 0.0);
  EXPECT_EQ(reg.gauge("fleet.r1.tasks_failed").value(), 0.0);
  EXPECT_EQ(reg.gauge("fleet.r1.execute_ewma_seconds").value(), 0.0);
  EXPECT_EQ(reg.gauge("fleet.r1.rtt_seconds").value(), 0.0);
  EXPECT_EQ(reg.gauge("fleet.r1.clock_offset_seconds").value(), 0.0);
  const auto fleet = master.fleetHealth();
  EXPECT_FALSE(fleet[0].seen) << "the lost rank's FleetHealth must reset";

  // After the heal, the worker rejoins as a FRESH rank: rank 1 stays dead.
  proxy.heal();
  std::unique_ptr<TcpWorkerTransport> rejoined;
  std::thread redial([&] {
    rejoined = connectWithBackoff("127.0.0.1", proxy.port(), 5, 0.05, wopts);
  });
  (void)master.waitForWorkers(2, 10.0);
  redial.join();
  ASSERT_NE(rejoined, nullptr);
  EXPECT_EQ(rejoined->rank(), 3);

  driver.shutdown();
  runner.join();
  stopDrain.store(true);
  worker1->setStatsProvider({});
  drain.join();
}

// -- Mid-frame stall: the decoder starves on a torn frame -------------------

TEST(PartitionChaos, MidFrameStallStarvesDecoderUntilWorkerTimeout) {
  TcpCommWorld master(0);
  ChaosProxy proxy("127.0.0.1", master.port());

  TcpWorkerTransport::Options wopts;
  wopts.masterTimeoutSeconds = 0.5;
  auto worker = joinViaProxy(master, proxy, wopts);

  ChaosEvent torn;
  torn.kind = ChaosEvent::Kind::StallMidFrame;
  torn.dir = ChaosDir::Down;
  torn.stallAfterBytes = 7;
  proxy.inject(torn);
  std::this_thread::sleep_for(50ms);

  master.send(0, 1, 5, payload(123));
  // The worker receives exactly 7 bytes of the frame — enough to wake its
  // reader, never enough to complete the frame.  The silence deadline
  // must fire; the torn frame must never surface as a message.
  bool sawMessage = false;
  EXPECT_THROW(
      {
        const auto deadline = std::chrono::steady_clock::now() + 5s;
        while (std::chrono::steady_clock::now() < deadline) {
          if (worker->recvFor(1, 0.1, 0, 5).has_value()) {
            sawMessage = true;
            break;
          }
        }
      },
      ConnectionLost);
  EXPECT_FALSE(sawMessage);
  EXPECT_GE(proxy.counters().stalls, 1u);
}

// -- Scenario (d): recovered and fault-ridden runs stay bitwise -------------

TEST(PartitionChaos, DelayDuplicateRunIsBitwiseIdenticalToSolo) {
  // Every worker->master frame is duplicated and both directions are
  // delayed with seeded jitter for the whole run: the duplicated result
  // frames must be discarded (not crash the driver, as they did before
  // the fix) and the result must not move by a bit.
  const noise::NoisyFunction::Options noiseOpts{.sigma0 = 1.0, .seed = 99};
  const noise::NoisyFunction objective(2, &testfunctions::sphere, noiseOpts);
  const std::vector<core::Point> start = {{2.0, 2.0}, {3.0, 2.0}, {2.0, 3.0}};

  core::MaxNoiseOptions algo;
  algo.common.termination.maxIterations = 12;
  algo.common.termination.maxSamples = 20'000;
  const mw::AlgorithmOptions options = algo;

  mw::MWRunConfig config;
  config.workers = 2;
  config.clientsPerWorker = 1;
  const auto solo = mw::runSimplexOverMW(objective, start, options, config);

  TcpCommWorld master(0);
  ChaosProxy proxy("127.0.0.1", master.port(),
                   ChaosSchedule::preset("delay-duplicate", 2026));
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    const std::uint16_t port = proxy.port();
    threads.emplace_back([port, &objective] {
      try {
        TcpWorkerTransport transport("127.0.0.1", port);
        mw::SamplingWorker worker(transport, transport.rank(), objective, 1);
        worker.run();
      } catch (const ConnectionLost&) {
      }
    });
    (void)master.waitForWorkers(i + 1, 10.0);
  }
  const auto chaotic = mw::runSimplexOverTransport(objective, start, options, master, config);
  for (auto& t : threads) t.join();

  EXPECT_GT(proxy.counters().framesDuplicated, 0u);
  EXPECT_EQ(chaotic.optimization.iterations, solo.optimization.iterations);
  EXPECT_EQ(chaotic.optimization.totalSamples, solo.optimization.totalSamples);
  EXPECT_EQ(chaotic.optimization.bestEstimate, solo.optimization.bestEstimate);
  ASSERT_EQ(chaotic.optimization.best.size(), solo.optimization.best.size());
  for (std::size_t i = 0; i < chaotic.optimization.best.size(); ++i) {
    EXPECT_EQ(chaotic.optimization.best[i], solo.optimization.best[i]);
  }
  EXPECT_EQ(chaotic.tasksCompleted, solo.tasksCompleted);
}

TEST(PartitionChaos, ScheduledPartitionWithReconnectingWorkerStaysBitwise) {
  // One worker rides the proxy under a scheduled partition/heal while a
  // second worker connects directly: the partitioned worker's shards are
  // requeued, it reconnects after the heal as a fresh rank, and the
  // recovered run still matches the solo run bit for bit.
  const noise::NoisyFunction::Options noiseOpts{.sigma0 = 1.0, .seed = 99};
  // ~20us of busy-work per sample: values are untouched, but the run
  // reliably outlives the scheduled partition window instead of finishing
  // before the first fault fires (which would make the test vacuous).
  const noise::NoisyFunction objective(
      2,
      [](std::span<const double> x) {
        for (volatile int spin = 0; spin < 50'000; ++spin) {
        }
        return testfunctions::sphere(x);
      },
      noiseOpts);
  const std::vector<core::Point> start = {{2.0, 2.0}, {3.0, 2.0}, {2.0, 3.0}};

  core::MaxNoiseOptions algo;
  algo.common.termination.maxIterations = 30;
  algo.common.termination.maxSamples = 60'000;
  algo.common.sampling.shardMinSamples = 64;
  const mw::AlgorithmOptions options = algo;

  mw::MWRunConfig config;
  config.workers = 2;
  config.clientsPerWorker = 1;
  const auto solo = mw::runSimplexOverMW(objective, start, options, config);

  TcpCommWorld::Options mopts;
  mopts.heartbeatIntervalSeconds = 0.05;
  mopts.heartbeatTimeoutSeconds = 0.3;
  TcpCommWorld master(0, mopts);

  ChaosSchedule schedule;
  schedule.seed = 2026;
  schedule.events.push_back(
      {0.2, ChaosEvent::Kind::Partition, ChaosDir::Up, 0.0, 0.0, 0, -1});
  // The heal must land well past the master's 0.3s heartbeat deadline:
  // results the worker ships during the partition are dropped on the
  // floor, and only the eviction-triggered requeue ever recomputes them —
  // a heal racing the eviction could strand those shards in-flight.
  schedule.events.push_back({1.0, ChaosEvent::Kind::Heal, ChaosDir::Up, 0.0, 0.0, 0, -1});
  ChaosProxy proxy("127.0.0.1", master.port(), schedule);

  // The chaos-side worker re-dials through the proxy whenever its link
  // dies, exactly like the CLI's reconnect loop.
  std::atomic<bool> stopReconnect{false};
  std::thread chaosWorker([&] {
    while (!stopReconnect.load()) {
      try {
        TcpWorkerTransport::Options wopts;
        wopts.heartbeatIntervalSeconds = 0.05;
        wopts.masterTimeoutSeconds = 0.3;
        wopts.handshakeTimeoutSeconds = 0.3;  // a partitioned redial fails fast
        TcpWorkerTransport transport("127.0.0.1", proxy.port(), wopts);
        mw::SamplingWorker worker(transport, transport.rank(), objective, 1);
        worker.run();
        break;  // clean shutdown from the master
      } catch (const std::exception&) {
      }
      std::this_thread::sleep_for(30ms);
    }
  });
  std::thread steadyWorker([&] {
    try {
      TcpWorkerTransport::Options wopts;
      wopts.heartbeatIntervalSeconds = 0.05;
      TcpWorkerTransport transport("127.0.0.1", master.port(), wopts);
      mw::SamplingWorker worker(transport, transport.rank(), objective, 1);
      worker.run();
    } catch (const ConnectionLost&) {
    }
  });
  (void)master.waitForWorkers(2, 10.0);

  const auto recovered =
      mw::runSimplexOverTransport(objective, start, options, master, config);
  stopReconnect.store(true);
  chaosWorker.join();
  steadyWorker.join();

  EXPECT_EQ(recovered.optimization.iterations, solo.optimization.iterations);
  EXPECT_EQ(recovered.optimization.totalSamples, solo.optimization.totalSamples);
  EXPECT_EQ(recovered.optimization.bestEstimate, solo.optimization.bestEstimate);
  ASSERT_EQ(recovered.optimization.best.size(), solo.optimization.best.size());
  for (std::size_t i = 0; i < recovered.optimization.best.size(); ++i) {
    EXPECT_EQ(recovered.optimization.best[i], solo.optimization.best[i]);
  }
  // (tasksCompleted is NOT compared here: sharding adapts to the momentary
  // live-worker count, so a run that loses and regains a worker legally
  // carves different task counts — the bitwise contract covers results.)
  // Non-vacuity: the fault plan actually fired mid-run and forced recovery.
  EXPECT_GE(proxy.counters().partitions, 1u);
  EXPECT_GE(proxy.counters().heals, 1u);
  EXPECT_GE(recovered.tasksRequeued, 1u)
      << "the run finished before the scheduled partition could bite";
}

}  // namespace
