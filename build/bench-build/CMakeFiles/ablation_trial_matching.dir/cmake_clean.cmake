file(REMOVE_RECURSE
  "../bench/ablation_trial_matching"
  "../bench/ablation_trial_matching.pdb"
  "CMakeFiles/ablation_trial_matching.dir/ablation_trial_matching.cpp.o"
  "CMakeFiles/ablation_trial_matching.dir/ablation_trial_matching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trial_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
