#include "md/system.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace sfopt::md;

WaterSystem smallSystem() {
  return buildWaterLattice(27, 0.997, 298.0, tip4pPublished(), 4.0, 7);
}

TEST(WaterSystem, SiteBookkeeping) {
  auto sys = smallSystem();
  EXPECT_EQ(sys.molecules(), 27);
  EXPECT_EQ(sys.sites(), 81);
  EXPECT_EQ(sys.speciesOf(0), Species::Oxygen);
  EXPECT_EQ(sys.speciesOf(1), Species::Hydrogen);
  EXPECT_EQ(sys.speciesOf(2), Species::Hydrogen);
  EXPECT_EQ(sys.speciesOf(3), Species::Oxygen);
  EXPECT_EQ(sys.moleculeOf(5), 1);
  EXPECT_DOUBLE_EQ(sys.massOf(0), kMassO);
  EXPECT_DOUBLE_EQ(sys.massOf(1), kMassH);
}

TEST(WaterSystem, ChargeNeutralPerMolecule) {
  auto sys = smallSystem();
  for (int m = 0; m < sys.molecules(); ++m) {
    const double q = sys.chargeOf(3 * m) + sys.chargeOf(3 * m + 1) + sys.chargeOf(3 * m + 2);
    EXPECT_NEAR(q, 0.0, 1e-15);
  }
  EXPECT_DOUBLE_EQ(sys.chargeOf(1), tip4pPublished().qH);
  EXPECT_DOUBLE_EQ(sys.chargeOf(0), -2.0 * tip4pPublished().qH);
}

TEST(WaterSystem, LatticeGeometryIsEquilibrium) {
  auto sys = smallSystem();
  const IntramolecularConstants c;
  for (int m = 0; m < sys.molecules(); ++m) {
    const auto o = static_cast<std::size_t>(3 * m);
    const Vec3 a = sys.positions[o + 1] - sys.positions[o];
    const Vec3 b = sys.positions[o + 2] - sys.positions[o];
    EXPECT_NEAR(norm(a), c.bondR0, 1e-9);
    EXPECT_NEAR(norm(b), c.bondR0, 1e-9);
    const double theta = std::acos(dot(a, b) / (norm(a) * norm(b)));
    EXPECT_NEAR(theta, c.angleTheta0, 1e-9);
  }
}

TEST(WaterSystem, BoxEdgeMatchesDensity) {
  auto sys = smallSystem();
  // n = 27 molecules at 0.997 g/cc => number density 0.03333 A^-3.
  const double numberDensity = 27.0 / sys.box().volume();
  EXPECT_NEAR(numberDensity, 0.997 * 0.602214076 / 18.01528, 1e-9);
}

TEST(WaterSystem, ThermalizationHitsTargetTemperature) {
  auto sys = smallSystem();
  EXPECT_NEAR(sys.temperature(), 298.0, 1e-6);  // exact after rescale
}

TEST(WaterSystem, MomentumIsZeroAfterThermalization) {
  auto sys = smallSystem();
  Vec3 p{};
  for (int i = 0; i < sys.sites(); ++i) {
    p += sys.massOf(i) * sys.velocities[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(norm(p), 0.0, 1e-9);
}

TEST(WaterSystem, RescaleSetsTemperatureExactly) {
  auto sys = smallSystem();
  sys.rescaleTo(150.0);
  EXPECT_NEAR(sys.temperature(), 150.0, 1e-9);
}

TEST(WaterSystem, CutoffMustFitBox) {
  EXPECT_THROW((void)buildWaterLattice(8, 0.997, 298.0, tip4pPublished(), 6.0, 1),
               std::invalid_argument);
}

TEST(WaterSystem, ReproducibleBySeed) {
  auto a = buildWaterLattice(8, 0.997, 298.0, tip4pPublished(), 3.0, 42);
  auto b = buildWaterLattice(8, 0.997, 298.0, tip4pPublished(), 3.0, 42);
  EXPECT_EQ(a.positions, b.positions);
  EXPECT_EQ(a.velocities, b.velocities);
  auto c = buildWaterLattice(8, 0.997, 298.0, tip4pPublished(), 3.0, 43);
  EXPECT_NE(a.positions, c.positions);
}

TEST(WaterSystem, MoleculesDoNotOverlap) {
  auto sys = smallSystem();
  // O-O distances between distinct molecules should be liquid-like (> 2 A).
  for (int a = 0; a < sys.molecules(); ++a) {
    for (int b = a + 1; b < sys.molecules(); ++b) {
      const Vec3 d = sys.box().minimumImage(sys.positions[static_cast<std::size_t>(3 * a)],
                                            sys.positions[static_cast<std::size_t>(3 * b)]);
      EXPECT_GT(norm(d), 2.0) << "molecules " << a << "," << b;
    }
  }
}

}  // namespace
