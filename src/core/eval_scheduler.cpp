#include "core/eval_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace sfopt::core {

EvalScheduler::EvalScheduler(AsyncSamplingBackend& backend, Options options)
    : backend_(backend), options_(options) {
  if (options_.shardMinSamples < 0) {
    throw std::invalid_argument("EvalScheduler: shardMinSamples must be >= 0");
  }
  if (options_.maxOutstandingShards < 0 || options_.maxStagedEntries < 0) {
    throw std::invalid_argument("EvalScheduler: caps must be >= 0");
  }
  if (options_.telemetry != nullptr) {
    auto& reg = options_.telemetry->metrics();
    telShardsPerBatch_ =
        &reg.histogram("eval.shards_per_batch", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
    telHits_ = &reg.counter("eval.speculation_hits");
    telMisses_ = &reg.counter("eval.speculation_misses");
    telHitRate_ = &reg.gauge("eval.speculation_hit_rate");
    telEvicted_ = &reg.counter("eval.staged_evicted");
  }
}

int EvalScheduler::resolvedOutstandingCap() const {
  if (options_.maxOutstandingShards > 0) return options_.maxOutstandingShards;
  return 2 * std::max(backend_.parallelism(), 1);
}

int EvalScheduler::resolvedStagingCap() const {
  if (options_.maxStagedEntries > 0) return options_.maxStagedEntries;
  return resolvedOutstandingCap();
}

std::int64_t EvalScheduler::plannedShards(std::int64_t count) const {
  if (options_.shardMinSamples <= 0 || count <= options_.shardMinSamples) return 1;
  const std::int64_t chunks = evalChunkCount(count);
  const std::int64_t byThreshold =
      (count + options_.shardMinSamples - 1) / options_.shardMinSamples;
  const std::int64_t shards =
      std::min({static_cast<std::int64_t>(std::max(backend_.parallelism(), 1)),
                byThreshold, chunks});
  return std::max<std::int64_t>(shards, 1);
}

int EvalScheduler::submitSharded(const SamplingBackend::BatchRequest& request,
                                 const BatchKey& key) {
  const std::int64_t chunks = evalChunkCount(request.count);
  const std::int64_t shards = plannedShards(request.count);
  Entry& entry = entries_.at(key);
  const std::int64_t base = chunks / shards;
  const std::int64_t extra = chunks % shards;
  std::int64_t chunkFirst = 0;
  for (std::int64_t s = 0; s < shards; ++s) {
    const std::int64_t shardChunks = base + (s < extra ? 1 : 0);
    const std::int64_t sampleOffset = chunkFirst * kEvalChunkSamples;
    const std::int64_t shardSamples =
        std::min(shardChunks * kEvalChunkSamples, request.count - sampleOffset);
    const SamplingBackend::BatchRequest shard{
        request.x, request.vertexId,
        request.startIndex + static_cast<std::uint64_t>(sampleOffset), shardSamples};
    const std::uint64_t ticket = backend_.submit(shard);
    ticketRoute_[ticket] = TicketRoute{key, chunkFirst, entry.sequence};
    ++entry.ticketsOutstanding;
    chunkFirst += shardChunks;
  }
  if (telShardsPerBatch_ != nullptr) {
    telShardsPerBatch_->observe(static_cast<double>(shards));
  }
  return static_cast<int>(shards);
}

void EvalScheduler::routeCompletion(const AsyncSamplingBackend::Completion& completion) {
  // Terminal trace markers for the shard span tree: every ticket the
  // backend completed ends life here as folded into its batch entry or
  // discarded (evicted / stale generation).  Zero-duration spans keyed by
  // the ticket as the trace id, matching the MW driver's shard spans.
  const auto traceTerminal = [&](const char* name, const char* reason,
                                 double chunks) {
    if (options_.telemetry == nullptr) return;
    auto& tracer = options_.telemetry->tracer();
    std::vector<std::pair<std::string, std::string>> strFields;
    if (reason != nullptr) strFields.emplace_back("reason", reason);
    tracer.emitComplete(name, tracer.now(), 0, std::move(strFields),
                        {{"chunks", chunks}}, completion.ticket);
  };
  const auto routeIt = ticketRoute_.find(completion.ticket);
  if (routeIt == ticketRoute_.end()) {
    throw std::logic_error("EvalScheduler: completion for unknown ticket");
  }
  const TicketRoute route = routeIt->second;
  ticketRoute_.erase(routeIt);
  const auto entryIt = entries_.find(route.key);
  if (entryIt == entries_.end()) {
    // Evicted while in flight: drop.
    traceTerminal("shard.discarded", "evicted",
                  static_cast<double>(completion.chunks.size()));
    return;
  }
  Entry& entry = entryIt->second;
  if (entry.sequence != route.generation) {
    // Stale ticket: its entry was evicted and the key re-created since.
    // The fresh entry has its own tickets; filling from this one would
    // double-count chunksFilled and could mark the entry complete while
    // slots belonging to unfinished fresh tickets are still empty.
    traceTerminal("shard.discarded", "stale",
                  static_cast<double>(completion.chunks.size()));
    return;
  }
  const auto n = static_cast<std::int64_t>(completion.chunks.size());
  if (route.firstChunk + n > entry.chunksTotal) {
    throw std::logic_error("EvalScheduler: completion overruns its batch");
  }
  for (std::int64_t j = 0; j < n; ++j) {
    entry.chunks[static_cast<std::size_t>(route.firstChunk + j)] = completion.chunks[
        static_cast<std::size_t>(j)];
  }
  entry.chunksFilled += n;
  --entry.ticketsOutstanding;
  traceTerminal("shard.folded", nullptr, static_cast<double>(n));
}

void EvalScheduler::collect(const std::vector<BatchKey>& needed) {
  const auto allDone = [&] {
    for (const BatchKey& k : needed) {
      if (!entries_.at(k).complete()) return false;
    }
    return true;
  };
  // The deadline bounds *silence*, not total runtime: every completion
  // pushes it out, so a long evaluation making steady progress never
  // trips it.
  const auto window = std::chrono::duration<double>(options_.timeoutSeconds);
  auto deadline = std::chrono::steady_clock::now() + window;
  while (!allDone()) {
    const double remaining = std::chrono::duration<double>(
                                 deadline - std::chrono::steady_clock::now())
                                 .count();
    if (remaining <= 0.0) {
      throw std::runtime_error(
          "EvalScheduler: backend silent for " + std::to_string(options_.timeoutSeconds) +
          "s with results outstanding");
    }
    const auto completions = backend_.poll(remaining);
    if (completions.empty()) continue;  // deadline check handles the timeout
    for (const auto& c : completions) routeCompletion(c);
    deadline = std::chrono::steady_clock::now() + window;
  }
}

void EvalScheduler::dropEntry(const BatchKey& key) {
  // In-flight tickets stay in ticketRoute_ (they still occupy the fabric
  // and count against the outstanding cap); their completions are dropped
  // when they arrive and find no entry.
  entries_.erase(key);
}

void EvalScheduler::evictSuperseded(std::uint64_t vertexId, std::uint64_t consumedEnd) {
  // Sample counts only grow, so a staged batch starting before the
  // consumed end can never be asked for again.
  for (auto it = staged_.begin(); it != staged_.end();) {
    if (it->vertexId == vertexId && it->startIndex < consumedEnd) {
      dropEntry(*it);
      it = staged_.erase(it);
      ++evicted_;
      if (telEvicted_ != nullptr) telEvicted_->add(1);
    } else {
      ++it;
    }
  }
}

void EvalScheduler::enforceStagingCap() {
  const auto cap = static_cast<std::size_t>(resolvedStagingCap());
  while (staged_.size() > cap) {
    dropEntry(staged_.front());
    staged_.pop_front();
    ++evicted_;
    if (telEvicted_ != nullptr) telEvicted_->add(1);
  }
}

std::vector<stats::Welford> EvalScheduler::evaluate(
    std::span<const SamplingBackend::BatchRequest> requests,
    std::span<const SamplingBackend::BatchRequest> hints) {
  std::vector<stats::Welford> results(requests.size());
  std::vector<BatchKey> needed;
  std::vector<std::size_t> live;  // indices with count > 0
  needed.reserve(requests.size());
  live.reserve(requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& r = requests[i];
    if (r.count < 0) throw std::invalid_argument("EvalScheduler: negative count");
    if (r.count == 0) continue;  // nothing to compute; empty accumulator
    const BatchKey key{r.vertexId, r.startIndex, r.count};
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.speculative) {
      // Speculation hit: the batch is already in flight (or done); claim it.
      it->second.speculative = false;
      if (const auto pos = std::find(staged_.begin(), staged_.end(), key);
          pos != staged_.end()) {
        staged_.erase(pos);
      }
      ++hits_;
      if (telHits_ != nullptr) telHits_->add(1);
    } else if (it == entries_.end()) {
      Entry entry;
      entry.chunksTotal = evalChunkCount(r.count);
      entry.chunks.resize(static_cast<std::size_t>(entry.chunksTotal));
      entry.sequence = nextSequence_++;
      entries_.emplace(key, std::move(entry));
      submitSharded(r, key);
      ++misses_;
      if (telMisses_ != nullptr) telMisses_->add(1);
    }
    // else: duplicate demand for the same key in this call shares the entry.
    needed.push_back(key);
    live.push_back(i);
  }
  if (telHitRate_ != nullptr && hits_ + misses_ > 0) {
    telHitRate_->set(static_cast<double>(hits_) /
                     static_cast<double>(hits_ + misses_));
  }

  // Launch the next round's predicted batches before blocking, so workers
  // have something to chew on while we wait, merge, and decide.
  if (options_.speculate) {
    const auto cap = static_cast<std::size_t>(resolvedOutstandingCap());
    for (const auto& h : hints) {
      if (h.count <= 0) continue;
      const BatchKey key{h.vertexId, h.startIndex, h.count};
      if (entries_.contains(key)) continue;  // already demanded or staged
      // Hard cap: count the shards this hint would submit, not just the
      // tickets already in flight, so the bound cannot be overshot.
      const auto hintTickets = static_cast<std::size_t>(plannedShards(h.count));
      if (ticketRoute_.size() + hintTickets > cap) {
        ++skipped_;
        continue;
      }
      Entry entry;
      entry.chunksTotal = evalChunkCount(h.count);
      entry.chunks.resize(static_cast<std::size_t>(entry.chunksTotal));
      entry.speculative = true;
      entry.sequence = nextSequence_++;
      entries_.emplace(key, std::move(entry));
      staged_.push_back(key);
      submitSharded(h, key);
    }
    enforceStagingCap();
  }

  collect(needed);

  for (std::size_t j = 0; j < live.size(); ++j) {
    const Entry& entry = entries_.at(needed[j]);
    results[live[j]] = foldEvalChunks(entry.chunks);
  }
  // Consume the demanded entries and retire staged batches they supersede.
  for (const BatchKey& key : needed) {
    if (entries_.erase(key) > 0) {
      evictSuperseded(key.vertexId,
                      key.startIndex + static_cast<std::uint64_t>(key.count));
    }
  }
  return results;
}

}  // namespace sfopt::core
