#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/sampling_backend.hpp"
#include "core/vertex.hpp"
#include "noise/stochastic_objective.hpp"
#include "noise/virtual_clock.hpp"

namespace sfopt::core {

/// Mediates all sampling of a StochasticObjective on behalf of an
/// optimization algorithm, and owns the accounting the paper's experiments
/// report on:
///
///  * the virtual wall clock, advanced under the paper's concurrency model
///    (the d+3 workers sample their vertices simultaneously, so a batch of
///    refinements costs max — not sum — of the per-vertex durations);
///  * the global sample counter (total objective evaluations);
///  * vertex identity, which doubles as the reproducible noise-stream id.
///
/// Algorithms never call the objective directly.
class SamplingContext {
 public:
  struct Options {
    SigmaMode sigmaMode = SigmaMode::Estimated;
    /// Hard cap on samples at any single vertex; a gate or comparison that
    /// still cannot resolve at the cap is forcibly resolved (the paper's
    /// "coincidentally nearly identical vertices" hazard, section 2.3).
    std::int64_t maxSamplesPerVertex = 1'000'000;
    /// Optional sampling backend (non-owning; must outlive the context).
    /// nullptr computes samples inline.
    SamplingBackend* backend = nullptr;
    /// First vertex id handed out.  Distinct contexts over the same
    /// objective should use disjoint id ranges so their noise streams stay
    /// independent (ids key the counter-based RNG).
    std::uint64_t firstVertexId = 0;
  };

  explicit SamplingContext(const noise::StochasticObjective& objective)
      : SamplingContext(objective, Options{}) {}
  SamplingContext(const noise::StochasticObjective& objective, Options options);

  /// Create a vertex at x and take `initialSamples` samples there.
  /// Does NOT advance the clock: creation cost is charged by the caller
  /// through coSample/chargeTime so that concurrent creations (the whole
  /// initial simplex at once) are charged once.
  [[nodiscard]] std::unique_ptr<Vertex> createVertex(Point x, std::int64_t initialSamples);

  /// Take `extra` more samples at v (bounded by maxSamplesPerVertex).
  /// Returns the number actually taken.  Does not advance the clock.
  std::int64_t refine(Vertex& v, std::int64_t extra);

  /// Refine several vertices "in parallel": each gets its requested number
  /// of samples, and the clock advances by max(samples actually taken)*dt.
  struct RefineRequest {
    Vertex* vertex = nullptr;
    std::int64_t samples = 0;
  };
  void coSample(std::span<const RefineRequest> requests);
  void coSample(std::initializer_list<RefineRequest> requests);

  /// Charge `samples * dt` of wall time without sampling (used when the
  /// caller has already refined through refine() and knows the concurrent
  /// batch shape).
  void chargeTime(std::int64_t samples);

  /// sigma_i(t_i) for v under the configured SigmaMode.  In Exact mode the
  /// objective must declare a noise scale; falls back to the estimate
  /// otherwise.
  [[nodiscard]] double sigma(const Vertex& v) const;

  /// Noise-free value at v's location, when the objective knows it.
  [[nodiscard]] std::optional<double> trueValue(const Vertex& v) const;

  [[nodiscard]] const noise::StochasticObjective& objective() const noexcept {
    return objective_;
  }
  [[nodiscard]] double now() const noexcept { return clock_.now(); }
  [[nodiscard]] std::int64_t totalSamples() const noexcept { return totalSamples_; }
  [[nodiscard]] std::int64_t verticesCreated() const noexcept {
    return static_cast<std::int64_t>(nextVertexId_ - options_.firstVertexId);
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Restore the accounting of a checkpointed run: the virtual clock, the
  /// global sample counter and the next vertex id.  Only meaningful on a
  /// freshly constructed context (resume path).
  void restoreAccounting(double clockNow, std::int64_t totalSamples,
                         std::uint64_t nextVertexId);

  /// True when v has hit the per-vertex sampling cap.
  [[nodiscard]] bool atSampleCap(const Vertex& v) const noexcept {
    return v.sampleCount() >= options_.maxSamplesPerVertex;
  }

 private:
  const noise::StochasticObjective& objective_;
  Options options_;
  noise::VirtualClock clock_;
  std::int64_t totalSamples_ = 0;
  std::uint64_t nextVertexId_;
};

}  // namespace sfopt::core
