#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/welford.hpp"

namespace sfopt::stats {

Summary::Summary(std::vector<double> values) : sorted_(std::move(values)) {
  if (sorted_.empty()) throw std::invalid_argument("Summary: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
  Welford w;
  for (double v : sorted_) w.add(v);
  mean_ = w.mean();
  stddev_ = sorted_.size() > 1 ? w.stddev() : 0.0;
}

double Summary::percentile(double p) const {
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("Summary::percentile: p out of range");
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double logRatio(double a, double b, double clamp) {
  constexpr double kTiny = 1e-300;
  const double aa = std::fabs(a);
  const double bb = std::fabs(b);
  if (aa < kTiny && bb < kTiny) return 0.0;
  if (aa < kTiny) return -clamp;
  if (bb < kTiny) return clamp;
  const double r = std::log10(aa / bb);
  return std::clamp(r, -clamp, clamp);
}

}  // namespace sfopt::stats
