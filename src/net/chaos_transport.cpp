#include "net/chaos_transport.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace sfopt::net {

namespace {

/// Poll granularity of the relay thread: short enough that delayed-frame
/// release times and injected events feel immediate to the tests.
constexpr int kPollMillis = 5;

constexpr std::size_t kReadChunk = 64 * 1024;

/// A length prefix beyond this is not protocol traffic; the proxy gives up
/// carving and relays the bytes opaquely so the real endpoint's decoder
/// raises the protocol error (the proxy must never be the strictest link).
constexpr std::size_t kMaxCarvedFrame = std::size_t{256} << 20;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void bump(std::atomic<std::uint64_t>& a, telemetry::Counter* c, std::uint64_t n = 1) {
  a.fetch_add(n, std::memory_order_relaxed);
  if (c != nullptr) c->add(static_cast<std::int64_t>(n));
}

}  // namespace

ChaosSchedule ChaosSchedule::preset(const std::string& name, std::uint64_t seed) {
  ChaosSchedule s;
  s.seed = seed;
  using Kind = ChaosEvent::Kind;
  if (name == "none") return s;
  if (name == "partition-heal") {
    s.events.push_back({2.0, Kind::Partition, ChaosDir::Up, 0.0, 0.0, 0, -1});
    s.events.push_back({6.0, Kind::Heal, ChaosDir::Up, 0.0, 0.0, 0, -1});
    return s;
  }
  if (name == "blackhole-up") {
    s.events.push_back({2.0, Kind::Blackhole, ChaosDir::Up, 0.0, 0.0, 0, -1});
    s.events.push_back({6.0, Kind::Heal, ChaosDir::Up, 0.0, 0.0, 0, -1});
    return s;
  }
  if (name == "blackhole-down") {
    s.events.push_back({2.0, Kind::Blackhole, ChaosDir::Down, 0.0, 0.0, 0, -1});
    s.events.push_back({6.0, Kind::Heal, ChaosDir::Down, 0.0, 0.0, 0, -1});
    return s;
  }
  if (name == "delay-duplicate") {
    s.events.push_back({0.0, Kind::Delay, ChaosDir::Up, 0.02, 0.02, 0, -1});
    s.events.push_back({0.0, Kind::Delay, ChaosDir::Down, 0.02, 0.02, 0, -1});
    s.events.push_back({0.0, Kind::Duplicate, ChaosDir::Up, 0.0, 0.0, 0, -1});
    return s;
  }
  if (name == "midframe-stall") {
    s.events.push_back({2.0, Kind::StallMidFrame, ChaosDir::Down, 0.0, 0.0, 7, -1});
    s.events.push_back({8.0, Kind::Heal, ChaosDir::Down, 0.0, 0.0, 0, -1});
    return s;
  }
  throw std::invalid_argument("ChaosSchedule: unknown preset '" + name + "'");
}

ChaosProxy::ChaosProxy(std::string targetHost, std::uint16_t targetPort,
                       ChaosSchedule schedule, telemetry::Telemetry* telemetry,
                       std::uint16_t listenPort)
    : targetHost_(std::move(targetHost)),
      targetPort_(targetPort),
      schedule_(std::move(schedule)),
      listener_(tcpListen(listenPort)),
      port_(localPort(listener_)),
      rngState_(schedule_.seed) {
  std::stable_sort(schedule_.events.begin(), schedule_.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.atSeconds < b.atSeconds;
                   });
  if (telemetry != nullptr) {
    auto& reg = telemetry->metrics();
    telConnections_ = &reg.counter("chaos.connections");
    telFramesForwarded_ = &reg.counter("chaos.frames_forwarded");
    telBytesForwarded_ = &reg.counter("chaos.bytes_forwarded");
    telFramesDropped_ = &reg.counter("chaos.frames_dropped");
    telBytesDropped_ = &reg.counter("chaos.bytes_dropped");
    telFramesDuplicated_ = &reg.counter("chaos.frames_duplicated");
    telFramesDelayed_ = &reg.counter("chaos.frames_delayed");
    telPartitions_ = &reg.counter("chaos.partitions");
    telHeals_ = &reg.counter("chaos.heals");
    telStalls_ = &reg.counter("chaos.stalls");
  }
  startSeconds_ = monotonicSeconds();
  thread_ = std::thread([this] { run(); });
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::stop() {
  if (!stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    for (auto& link : links_) closeLink(*link);
    listener_.close();
  } else if (thread_.joinable()) {
    thread_.join();
  }
}

void ChaosProxy::inject(ChaosEvent event) {
  std::lock_guard lock(injectMutex_);
  injected_.push_back(event);
}

void ChaosProxy::heal() {
  ChaosEvent e;
  e.kind = ChaosEvent::Kind::Heal;
  e.connIndex = -1;
  inject(e);
}

ChaosProxy::Counters ChaosProxy::counters() const {
  Counters c;
  c.connectionsAccepted = counts_.connectionsAccepted.load(std::memory_order_relaxed);
  c.connectionsClosed = counts_.connectionsClosed.load(std::memory_order_relaxed);
  c.framesForwarded = counts_.framesForwarded.load(std::memory_order_relaxed);
  c.bytesForwarded = counts_.bytesForwarded.load(std::memory_order_relaxed);
  c.framesDropped = counts_.framesDropped.load(std::memory_order_relaxed);
  c.bytesDropped = counts_.bytesDropped.load(std::memory_order_relaxed);
  c.framesDuplicated = counts_.framesDuplicated.load(std::memory_order_relaxed);
  c.framesDelayed = counts_.framesDelayed.load(std::memory_order_relaxed);
  c.partitions = counts_.partitions.load(std::memory_order_relaxed);
  c.heals = counts_.heals.load(std::memory_order_relaxed);
  c.stalls = counts_.stalls.load(std::memory_order_relaxed);
  return c;
}

double ChaosProxy::jitterUnit() {
  return static_cast<double>(splitmix64(rngState_) >> 11) * 0x1.0p-53;
}

void ChaosProxy::applyToLink(Link& link, const ChaosEvent& event) {
  using Kind = ChaosEvent::Kind;
  LinkDir& d = link.dir[static_cast<int>(event.dir)];
  switch (event.kind) {
    case Kind::Partition:
      link.dir[0].drop = true;
      link.dir[1].drop = true;
      break;
    case Kind::Heal:
      for (LinkDir* ld : {&link.dir[0], &link.dir[1]}) {
        ld->drop = false;
        ld->stalled = false;
        ld->midFrameArmed = false;
        ld->midFramePrefix = 0;
        ld->duplicate = false;
        ld->delaySeconds = 0.0;
        ld->jitterSeconds = 0.0;
      }
      break;
    case Kind::Blackhole:
      d.drop = true;
      break;
    case Kind::Stall:
      d.stalled = true;
      break;
    case Kind::StallMidFrame:
      d.midFrameArmed = true;
      d.midFramePrefix = event.stallAfterBytes;
      break;
    case Kind::Delay:
      d.delaySeconds = event.delaySeconds;
      d.jitterSeconds = event.jitterSeconds;
      break;
    case Kind::Duplicate:
      d.duplicate = true;
      break;
    case Kind::CloseConnections:
      closeLink(link);
      break;
  }
}

void ChaosProxy::apply(const ChaosEvent& event) {
  using Kind = ChaosEvent::Kind;
  switch (event.kind) {
    case Kind::Partition:
      bump(counts_.partitions, telPartitions_);
      break;
    case Kind::Heal:
      bump(counts_.heals, telHeals_);
      break;
    case Kind::Stall:
    case Kind::StallMidFrame:
      bump(counts_.stalls, telStalls_);
      break;
    default:
      break;
  }
  if (event.connIndex >= 0) {
    if (static_cast<std::size_t>(event.connIndex) < links_.size()) {
      applyToLink(*links_[static_cast<std::size_t>(event.connIndex)], event);
    }
    return;
  }
  for (auto& link : links_) {
    if (link->open) applyToLink(*link, event);
  }
  // Mirror the standing state onto future connections: a worker that dials
  // in mid-partition must not tunnel through it.
  Link defaults;
  defaults.dir[0] = pendingDefaults_[0];
  defaults.dir[1] = pendingDefaults_[1];
  defaults.open = true;
  if (event.kind != Kind::CloseConnections) applyToLink(defaults, event);
  pendingDefaults_[0] = std::move(defaults.dir[0]);
  pendingDefaults_[1] = std::move(defaults.dir[1]);
}

void ChaosProxy::applyDue(double elapsed) {
  {
    std::lock_guard lock(injectMutex_);
    for (const ChaosEvent& e : injected_) apply(e);
    injected_.clear();
  }
  while (nextEvent_ < schedule_.events.size() &&
         schedule_.events[nextEvent_].atSeconds <= elapsed) {
    apply(schedule_.events[nextEvent_]);
    ++nextEvent_;
  }
}

void ChaosProxy::acceptOne() {
  while (auto accepted = tcpAccept(listener_)) {
    auto link = std::make_unique<Link>();
    link->client = std::move(*accepted);
    try {
      link->server = tcpConnect(targetHost_, targetPort_, 5.0);
    } catch (const std::exception&) {
      continue;  // target gone: refuse by dropping the accepted socket
    }
    link->dir[0] = pendingDefaults_[0];
    link->dir[1] = pendingDefaults_[1];
    link->open = true;
    links_.push_back(std::move(link));
    active_.fetch_add(1, std::memory_order_relaxed);
    bump(counts_.connectionsAccepted, telConnections_);
  }
}

void ChaosProxy::closeLink(Link& link) {
  if (!link.open) return;
  link.open = false;
  link.client.close();
  link.server.close();
  link.dir[0] = LinkDir{};
  link.dir[1] = LinkDir{};
  active_.fetch_sub(1, std::memory_order_relaxed);
  bump(counts_.connectionsClosed, nullptr);
}

void ChaosProxy::pumpIn(Link& link, ChaosDir d) {
  LinkDir& dir = link.dir[static_cast<int>(d)];
  const Socket& src = d == ChaosDir::Up ? link.client : link.server;
  std::byte chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(src.fd(), chunk, sizeof chunk, 0);
    if (n > 0) {
      dir.inbox.insert(dir.inbox.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    closeLink(link);
    return;
  }
  // Carve complete frames (4-byte LE length prefix + body) and route each
  // through the direction's fault state.
  const double now = monotonicSeconds();
  std::size_t pos = 0;
  while (dir.inbox.size() - pos >= 4) {
    const auto* b = dir.inbox.data() + pos;
    const std::uint32_t len = static_cast<std::uint32_t>(b[0]) |
                              (static_cast<std::uint32_t>(b[1]) << 8) |
                              (static_cast<std::uint32_t>(b[2]) << 16) |
                              (static_cast<std::uint32_t>(b[3]) << 24);
    if (len == 0 || len > kMaxCarvedFrame) {
      // Not protocol traffic: relay the rest opaquely and let the real
      // endpoint's decoder reject it.
      Chunk raw;
      raw.bytes.assign(dir.inbox.begin() + static_cast<std::ptrdiff_t>(pos),
                       dir.inbox.end());
      raw.dueAt = now;
      pos = dir.inbox.size();
      if (!dir.drop) dir.outQ.push_back(std::move(raw));
      break;
    }
    const std::size_t total = 4 + static_cast<std::size_t>(len);
    if (dir.inbox.size() - pos < total) break;
    std::vector<std::byte> frame(dir.inbox.begin() + static_cast<std::ptrdiff_t>(pos),
                                 dir.inbox.begin() + static_cast<std::ptrdiff_t>(pos + total));
    pos += total;

    if (dir.drop) {
      bump(counts_.framesDropped, telFramesDropped_);
      bump(counts_.bytesDropped, telBytesDropped_, frame.size());
      continue;
    }
    if (dir.midFrameArmed) {
      // Deliver the prefix, then freeze the direction: the receiver's
      // decoder is left holding a torn frame it can never complete.
      const std::size_t prefix = std::min(dir.midFramePrefix, frame.size());
      Chunk torn;
      torn.bytes.assign(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(prefix));
      torn.dueAt = now;
      bump(counts_.bytesForwarded, telBytesForwarded_, prefix);
      bump(counts_.bytesDropped, telBytesDropped_, frame.size() - prefix);
      dir.outQ.push_back(std::move(torn));
      dir.midFrameArmed = false;
      dir.midFramePrefix = 0;
      dir.stalled = true;
      break;  // stalled: whatever is left in the inbox waits for a heal
    }
    Chunk out;
    out.dueAt = now + dir.delaySeconds +
                (dir.jitterSeconds > 0.0 ? dir.jitterSeconds * jitterUnit() : 0.0);
    if (dir.delaySeconds > 0.0 || dir.jitterSeconds > 0.0) {
      bump(counts_.framesDelayed, telFramesDelayed_);
    }
    bump(counts_.framesForwarded, telFramesForwarded_);
    bump(counts_.bytesForwarded, telBytesForwarded_, frame.size());
    // Never duplicate handshake frames (Hello=3 / Welcome=4): TCP dedups
    // the connection-setup path, so frame duplication models re-delivered
    // *payload* frames; a doubled Hello would be a protocol violation no
    // real fabric produces, and the master rightly evicts peers for it.
    const bool handshake =
        frame.size() > 4 && (frame[4] == std::byte{3} || frame[4] == std::byte{4});
    if (dir.duplicate && !handshake) {
      Chunk dup;
      dup.bytes = frame;
      dup.dueAt = out.dueAt;
      out.bytes = std::move(frame);
      dir.outQ.push_back(std::move(out));
      dir.outQ.push_back(std::move(dup));
      bump(counts_.framesDuplicated, telFramesDuplicated_);
    } else {
      out.bytes = std::move(frame);
      dir.outQ.push_back(std::move(out));
    }
  }
  if (pos > 0) dir.inbox.erase(dir.inbox.begin(), dir.inbox.begin() + static_cast<std::ptrdiff_t>(pos));
}

void ChaosProxy::pumpOut(Link& link, ChaosDir d, double now) {
  LinkDir& dir = link.dir[static_cast<int>(d)];
  if (dir.stalled) return;
  const Socket& sink = d == ChaosDir::Up ? link.server : link.client;
  while (!dir.outQ.empty() && dir.outQ.front().dueAt <= now) {
    Chunk& front = dir.outQ.front();
    while (dir.outPos < front.bytes.size()) {
      const ssize_t n = ::send(sink.fd(), front.bytes.data() + dir.outPos,
                               front.bytes.size() - dir.outPos, MSG_NOSIGNAL);
      if (n > 0) {
        dir.outPos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      closeLink(link);
      return;
    }
    dir.outQ.pop_front();
    dir.outPos = 0;
  }
}

void ChaosProxy::run() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    applyDue(monotonicSeconds() - startSeconds_);

    std::vector<pollfd> fds;
    fds.push_back({listener_.fd(), POLLIN, 0});
    // (link index, direction whose *source* this fd is) per entry.
    std::vector<std::pair<std::size_t, ChaosDir>> where;
    for (std::size_t i = 0; i < links_.size(); ++i) {
      const Link& link = *links_[i];
      if (!link.open) continue;
      // A stalled direction stops reading its source entirely — that is
      // the fault: the sender's kernel buffer backs up.
      if (!link.dir[0].stalled) {
        fds.push_back({link.client.fd(), POLLIN, 0});
        where.emplace_back(i, ChaosDir::Up);
      }
      if (!link.dir[1].stalled) {
        fds.push_back({link.server.fd(), POLLIN, 0});
        where.emplace_back(i, ChaosDir::Down);
      }
    }
    const int ready = ::poll(fds.data(), fds.size(), kPollMillis);
    if (ready > 0) {
      if (fds[0].revents & POLLIN) acceptOne();
      for (std::size_t k = 0; k < where.size(); ++k) {
        const short re = fds[k + 1].revents;
        if (re & (POLLIN | POLLERR | POLLHUP)) {
          Link& link = *links_[where[k].first];
          if (link.open) pumpIn(link, where[k].second);
        }
      }
    }
    const double now = monotonicSeconds();
    for (auto& link : links_) {
      if (!link->open) continue;
      pumpOut(*link, ChaosDir::Up, now);
      if (link->open) pumpOut(*link, ChaosDir::Down, now);
    }
  }
}

}  // namespace sfopt::net
