#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "md/forces.hpp"
#include "md/simulation.hpp"
#include "md/system.hpp"

namespace {

using namespace sfopt::md;

TEST(TailCorrections, SignsAreAttractiveBeyondTheWell) {
  // For rc well past the LJ minimum, the tail integral is dominated by the
  // attractive r^-6 term: both corrections are negative.
  auto sys = buildWaterLattice(27, 0.997, 298.0, tip4pPublished(), 4.5, 1);
  const auto t = ljTailCorrections(sys);
  EXPECT_LT(t.energyKcalPerMol, 0.0);
  EXPECT_LT(t.pressureAtm, 0.0);
}

TEST(TailCorrections, MatchAnalyticFormula) {
  auto sys = buildWaterLattice(27, 0.997, 298.0, WaterParameters{0.2, 3.0, 0.5}, 4.0, 2);
  const auto t = ljTailCorrections(sys);
  const double rho = 27.0 / sys.box().volume();
  const double sr3 = std::pow(3.0 / 4.0, 3.0);
  const double sr9 = sr3 * sr3 * sr3;
  const double expectedU =
      8.0 / 3.0 * std::numbers::pi * rho * 27.0 * 0.2 * 27.0 * (sr9 / 3.0 - sr3);
  EXPECT_NEAR(t.energyKcalPerMol, expectedU, std::abs(expectedU) * 1e-12);
}

TEST(TailCorrections, ShrinkWithLargerCutoff) {
  // The neglected tail shrinks as rc grows: |correction(rc=5.5)| < |correction(rc=4)|.
  auto small = buildWaterLattice(64, 0.997, 298.0, tip4pPublished(), 4.0, 3);
  auto large = buildWaterLattice(64, 0.997, 298.0, tip4pPublished(), 5.5, 3);
  EXPECT_LT(std::abs(ljTailCorrections(large).energyKcalPerMol),
            std::abs(ljTailCorrections(small).energyKcalPerMol));
  EXPECT_LT(std::abs(ljTailCorrections(large).pressureAtm),
            std::abs(ljTailCorrections(small).pressureAtm));
}

TEST(TailCorrections, ScaleLinearlyWithEpsilon) {
  auto a = buildWaterLattice(27, 0.997, 298.0, WaterParameters{0.1, 3.15, 0.52}, 4.0, 4);
  auto b = buildWaterLattice(27, 0.997, 298.0, WaterParameters{0.3, 3.15, 0.52}, 4.0, 4);
  EXPECT_NEAR(ljTailCorrections(b).energyKcalPerMol,
              3.0 * ljTailCorrections(a).energyKcalPerMol, 1e-12);
}

TEST(TailCorrections, SimulationAppliesThemWhenEnabled) {
  SimulationConfig base;
  base.molecules = 27;
  base.cutoff = 4.5;
  base.rdfRMax = 4.5;
  base.rdfBins = 45;
  base.equilibrationSteps = 100;
  base.productionSteps = 100;
  base.sampleEvery = 10;
  base.seed = 6;
  SimulationConfig off = base;
  off.applyTailCorrections = false;
  const auto with = simulateWater(tip4pPublished(), base);
  const auto without = simulateWater(tip4pPublished(), off);
  // Same trajectory (the correction is a post-hoc reporting shift).
  const auto sys = buildWaterLattice(base.molecules, base.densityGramsPerCc,
                                     base.temperatureK, tip4pPublished(), base.cutoff,
                                     base.seed);
  const auto tail = ljTailCorrections(sys);
  EXPECT_NEAR(with.potentialPerMoleculeKcal - without.potentialPerMoleculeKcal,
              tail.energyKcalPerMol / base.molecules, 1e-9);
  EXPECT_NEAR(with.pressureAtm - without.pressureAtm, tail.pressureAtm, 1e-6);
}

}  // namespace
