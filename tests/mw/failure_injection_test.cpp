// Failure-injection tests for the MW runtime: a worker whose executeTask
// throws reports kTagError, and the driver requeues the task on another
// worker — the in-process analogue of the paper's worker-restart handling.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mw/mw_driver.hpp"
#include "mw/mw_task.hpp"
#include "mw/mw_worker.hpp"

namespace {

using namespace sfopt::mw;

class EchoTask final : public MWTask {
 public:
  EchoTask() = default;
  explicit EchoTask(std::int64_t v) : value_(v) {}
  void packInput(MessageBuffer& b) const override { b.pack(value_); }
  void unpackInput(MessageBuffer& b) override { value_ = b.unpackInt64(); }
  void packResult(MessageBuffer& b) const override { b.pack(value_); }
  void unpackResult(MessageBuffer& b) override { result_ = b.unpackInt64(); }
  std::int64_t value_ = 0;
  std::int64_t result_ = -1;
};

/// Fails the first `failures` tasks it sees, then behaves.
class FlakyWorker final : public MWWorker {
 public:
  FlakyWorker(CommWorld& comm, Rank rank, int failures)
      : MWWorker(comm, rank), remainingFailures_(failures) {}

 protected:
  void executeTask(MessageBuffer& in, MessageBuffer& out) override {
    EchoTask t;
    t.unpackInput(in);
    if (remainingFailures_-- > 0) {
      throw std::runtime_error("injected failure");
    }
    t.packResult(out);
  }

 private:
  int remainingFailures_;
};

/// Always fails.
class BrokenWorker final : public MWWorker {
 public:
  using MWWorker::MWWorker;

 protected:
  void executeTask(MessageBuffer&, MessageBuffer&) override {
    throw std::runtime_error("permanently broken");
  }
};

template <typename W, typename... Args>
struct Pool {
  Pool(CommWorld& comm, int workers, Args... args) {
    for (int w = 0; w < workers; ++w) {
      objs.push_back(std::make_unique<W>(comm, w + 1, args...));
      threads.emplace_back([this, w] { objs[static_cast<std::size_t>(w)]->run(); });
    }
  }
  ~Pool() {
    for (auto& t : threads) t.join();
  }
  std::vector<std::unique_ptr<W>> objs;
  std::vector<std::thread> threads;
};

TEST(FailureInjection, FlakyWorkerTasksAreRequeuedAndComplete) {
  CommWorld comm(3);
  Pool<FlakyWorker, int> pool(comm, 2, 2);  // each worker fails its first 2 tasks
  MWDriver driver(comm);
  std::vector<EchoTask> tasks;
  for (std::int64_t i = 0; i < 12; ++i) tasks.emplace_back(i);
  std::vector<MWTask*> ptrs;
  for (auto& t : tasks) ptrs.push_back(&t);
  driver.executeTasks(ptrs);
  for (std::int64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(tasks[static_cast<std::size_t>(i)].result_, i);
  }
  EXPECT_GT(driver.tasksRequeued(), 0u);
  EXPECT_EQ(driver.tasksCompleted(), 12u);
  driver.shutdown();
}

TEST(FailureInjection, WorkerStaysUpAfterFailure) {
  CommWorld comm(2);
  Pool<FlakyWorker, int> pool(comm, 1, 1);  // single worker, fails once
  MWDriver driver(comm);
  // With only one worker the driver must eventually hand the task back to
  // the same (previously failing) worker rather than deadlock.
  EchoTask t(42);
  MWTask* p = &t;
  driver.executeTasks({&p, 1});
  EXPECT_EQ(t.result_, 42);
  EXPECT_EQ(pool.objs[0]->tasksFailed(), 1u);
  EXPECT_EQ(pool.objs[0]->tasksExecuted(), 1u);
  driver.shutdown();
}

TEST(FailureInjection, PermanentFailureSurfacesAfterRetries) {
  CommWorld comm(3);
  Pool<BrokenWorker> pool(comm, 2);
  MWDriver driver(comm);
  driver.setMaxRetries(2);
  EchoTask t(1);
  MWTask* p = &t;
  EXPECT_THROW(driver.executeTasks({&p, 1}), std::runtime_error);
  driver.shutdown();
}

TEST(FailureInjection, HealthyTasksUnaffectedByOneBadApple) {
  // One worker that always fails mixed with two healthy ones: the batch
  // still completes and the failures are absorbed as requeues.
  CommWorld comm(4);
  std::vector<std::unique_ptr<MWWorker>> objs;
  std::vector<std::thread> threads;
  objs.push_back(std::make_unique<BrokenWorker>(comm, 1));
  objs.push_back(std::make_unique<FlakyWorker>(comm, 2, 0));
  objs.push_back(std::make_unique<FlakyWorker>(comm, 3, 0));
  for (std::size_t i = 0; i < objs.size(); ++i) {
    threads.emplace_back([&objs, i] { objs[i]->run(); });
  }
  MWDriver driver(comm);
  driver.setMaxRetries(10);
  std::vector<EchoTask> tasks;
  for (std::int64_t i = 0; i < 30; ++i) tasks.emplace_back(i);
  std::vector<MWTask*> ptrs;
  for (auto& t : tasks) ptrs.push_back(&t);
  driver.executeTasks(ptrs);
  for (std::int64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(tasks[static_cast<std::size_t>(i)].result_, i);
  }
  driver.shutdown();
  for (auto& t : threads) t.join();
}

}  // namespace
