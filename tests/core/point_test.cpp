#include "core/point.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace sfopt::core;

TEST(PointOps, AddSubtractScale) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ(add(a, b), (Point{4.0, 1.0}));
  EXPECT_EQ(subtract(a, b), (Point{-2.0, 3.0}));
  EXPECT_EQ(scale(a, 2.0), (Point{2.0, 4.0}));
}

TEST(PointOps, DimensionMismatchThrows) {
  const Point a{1.0, 2.0};
  const Point b{1.0};
  EXPECT_THROW((void)add(a, b), std::invalid_argument);
  EXPECT_THROW((void)subtract(a, b), std::invalid_argument);
  EXPECT_THROW((void)affineCombine(1.0, a, 1.0, b), std::invalid_argument);
}

TEST(PointOps, AffineCombine) {
  const Point a{2.0, 4.0};
  const Point b{1.0, 1.0};
  // 2a - b
  EXPECT_EQ(affineCombine(2.0, a, -1.0, b), (Point{3.0, 7.0}));
}

TEST(PointOps, Centroid) {
  const std::vector<Point> pts{{0.0, 0.0}, {2.0, 0.0}, {1.0, 3.0}};
  EXPECT_EQ(centroid(pts), (Point{1.0, 1.0}));
  EXPECT_THROW((void)centroid(std::vector<Point>{}), std::invalid_argument);
}

TEST(PointOps, CentroidMixedDimensionThrows) {
  const std::vector<Point> pts{{0.0, 0.0}, {2.0}};
  EXPECT_THROW((void)centroid(pts), std::invalid_argument);
}

TEST(PointOps, ChebyshevDistance) {
  const Point a{0.0, 5.0};
  const Point b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(chebyshevDistance(a, b), 3.0);
}

TEST(PointOps, ToStringFormat) {
  const Point a{1.0, -2.5};
  EXPECT_EQ(toString(a, 3), "(1, -2.5)");
  EXPECT_EQ(toString(Point{}), "()");
}

}  // namespace
