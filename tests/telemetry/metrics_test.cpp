// MetricsRegistry unit tests: register-or-get semantics, kind mismatch
// detection, histogram bucketing, and the lock-free update path under
// concurrent writers.

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace {

using namespace sfopt::telemetry;

TEST(MetricsRegistry, CounterRegisterOrGetReturnsStableHandle) {
  MetricsRegistry reg;
  Counter& a = reg.counter("engine.iterations");
  Counter& b = reg.counter("engine.iterations");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add();
  EXPECT_EQ(a.value(), 4);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, GaugeIsLastValueWins) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("mw.workers");
  g.set(3.0);
  g.set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("x", {1.0}), std::invalid_argument);
  (void)reg.histogram("h", {1.0, 2.0});
  EXPECT_THROW((void)reg.histogram("h", {1.0, 3.0}), std::invalid_argument);
  EXPECT_NO_THROW((void)reg.histogram("h", {1.0, 2.0}));
}

TEST(Histogram, BucketsObservationsByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // +inf
  const auto counts = h.bucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.5 / 4.0);
}

TEST(Histogram, EmptyBoundsStillCountsAndSums) {
  Histogram h({});
  h.observe(2.0);
  h.observe(3.0);
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
  ASSERT_EQ(h.bucketCounts().size(), 1u);
  EXPECT_EQ(h.bucketCounts()[0], 2);
}

TEST(Histogram, ExponentialBoundsGrowGeometrically) {
  const auto b = Histogram::exponentialBounds(1e-3, 10.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1e-3);
  EXPECT_DOUBLE_EQ(b[1], 1e-2);
  EXPECT_NEAR(b[3], 1.0, 1e-12);
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("b.count").add(2);
  reg.gauge("a.level").set(1.5);
  reg.histogram("c.lat", {1.0}).observe(0.5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.level");
  EXPECT_EQ(snap[0].kind, MetricSnapshot::Kind::Gauge);
  EXPECT_DOUBLE_EQ(snap[0].numValue, 1.5);
  EXPECT_EQ(snap[1].name, "b.count");
  EXPECT_EQ(snap[1].intValue, 2);
  EXPECT_EQ(snap[2].name, "c.lat");
  EXPECT_EQ(snap[2].count, 1);
  ASSERT_EQ(snap[2].bucketCounts.size(), 2u);
  EXPECT_EQ(snap[2].bucketCounts[0], 1);
}

TEST(MetricsRegistry, ConcurrentUpdatesThroughHandlesAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  Histogram& h = reg.histogram("lat", {0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(0.25);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), 0.25 * kThreads * kPerThread);
  EXPECT_EQ(h.bucketCounts()[0], kThreads * kPerThread);
}

}  // namespace
