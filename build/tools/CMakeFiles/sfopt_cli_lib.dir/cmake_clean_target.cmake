file(REMOVE_RECURSE
  "libsfopt_cli_lib.a"
)
