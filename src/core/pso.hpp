#pragma once

#include <cstdint>

#include "core/algorithms.hpp"
#include "core/result.hpp"
#include "noise/stochastic_objective.hpp"

namespace sfopt::core {

/// Particle swarm optimization for stochastic objectives — the paper's
/// "Recommendations for Future Research" hybrid (section 5.2): "An ability
/// to use PSO with maxnoise and point-to-point may prove to be another
/// step forward in the development of global stochastic algorithms."
///
/// The swarm is classical (inertia + cognitive + social velocity update);
/// what is new is how *bests* are decided under sampling noise:
///
///  * plain mode (confidenceBestUpdates = false): a freshly evaluated
///    position replaces the personal/global best whenever its sampled mean
///    is lower — the naive scheme that inflates bests with lucky draws
///    ("winner's curse");
///  * confidence mode (default): the replacement must win a k-sigma
///    point-to-point comparison, with bounded resampling of both
///    candidates — the PC discipline transplanted onto PSO.
struct PsoOptions {
  int particles = 16;
  double inertia = 0.72;
  double cognitive = 1.49;
  double social = 1.49;
  /// Initialization box (per coordinate) and velocity clamp.
  double boxLo = -5.0;
  double boxHi = 5.0;
  double maxVelocityFraction = 0.25;  ///< of the box width, per component
  /// Samples per position evaluation.
  std::int64_t samplesPerEvaluation = 4;
  /// Noise-aware best updates (the MN/PC hybrid idea).
  bool confidenceBestUpdates = true;
  double k = 1.0;
  std::int64_t minSamplesForConfidence = 8;
  ResamplePolicy resample;  ///< maxRoundsPerComparison bounds best-duels
  TerminationCriteria termination;
  SamplingContext::Options sampling;
  std::uint64_t seed = 0xB05;
  bool recordTrace = false;
};

/// Run the swarm on `objective`.  The result's iteration count is swarm
/// generations; counters.resampleRounds counts best-duel resampling and
/// counters.forcedResolutions the duels cut off by the round cap.
[[nodiscard]] OptimizationResult runParticleSwarm(const noise::StochasticObjective& objective,
                                                  const PsoOptions& options = {});

}  // namespace sfopt::core
