#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/point.hpp"
#include "core/result.hpp"
#include "core/sampling_backend.hpp"
#include "core/termination.hpp"
#include "mw/message_buffer.hpp"
#include "mw/parallel_runner.hpp"
#include "noise/noisy_function.hpp"

namespace sfopt::service {

/// Job-oriented control plane vocabulary shared by the daemon
/// (OptimizationService), the client library (ServiceClient) and the
/// worker executor (ServiceWorker).  Everything here is plain data plus
/// MessageBuffer marshaling — the wire schema of the JobSubmit / JobStatus
/// / JobCancel / JobResult frames and of the self-describing per-job
/// sampling tasks.

/// Trace ids of service runs are namespaced by job id: every shard ticket
/// is (jobId << kJobTraceShift) | sequence, and the per-job root span uses
/// (jobId << kJobTraceShift) exactly (shard sequences start at 1, so the
/// root id never collides with a ticket).  Matches
/// telemetry::kTraceNamespaceShift.
inline constexpr int kJobTraceShift = 40;

[[nodiscard]] constexpr std::uint64_t jobTraceNamespace(std::uint64_t jobId) noexcept {
  return jobId << kJobTraceShift;
}

/// Everything a worker needs to reconstruct a job's objective, carried on
/// every sampling task so one worker serves many jobs with no per-job
/// handshake.  `clients` sizes the worker-side VertexServer pool.
struct ObjectiveSpec {
  std::string function = "rosenbrock";
  std::int64_t dim = 4;
  double sigma0 = 1.0;
  std::uint64_t seed = 2026;
  std::int64_t clients = 1;

  void pack(mw::MessageBuffer& buf) const;
  [[nodiscard]] static ObjectiveSpec unpack(mw::MessageBuffer& buf);

  /// Instantiate the objective; throws std::runtime_error on an unknown
  /// function name or a dimension the function rejects.
  [[nodiscard]] noise::NoisyFunction makeObjective() const;
};

/// One submitted optimization: the objective, the simplex algorithm and
/// its knobs, the termination budget, the evaluation-pipeline knobs, and
/// the explicit initial simplex (clients compute it locally, so a job
/// reruns bitwise identically to the equivalent in-process `sfopt
/// optimize` invocation).
struct JobSpec {
  ObjectiveSpec objective;
  std::string algorithm = "pc";  ///< det | mn | anderson | pc | pcmn
  double k = 1.0;                ///< mn / pc confidence constant
  double k1 = 1.0;               ///< anderson
  double k2 = 0.0;               ///< anderson
  core::TerminationCriteria termination;
  std::int64_t shardMinSamples = 0;
  bool speculate = false;
  std::int64_t priority = 1;         ///< 1..100; weighted-round-robin drain weight
  std::vector<core::Point> initial;  ///< exactly dim + 1 points

  void pack(mw::MessageBuffer& buf) const;
  [[nodiscard]] static JobSpec unpack(mw::MessageBuffer& buf);

  /// Reject malformed specs before admission (unknown algorithm or
  /// function, wrong simplex shape).  Throws std::runtime_error.
  void validate() const;

  /// Build the engine options this spec describes (no backend/telemetry
  /// attached yet; the job runner plugs those in).
  [[nodiscard]] mw::AlgorithmOptions makeOptions() const;
};

/// Lifecycle of a job inside the daemon, plus the two wire-only codes
/// replies need (a rejected submission never gets a table entry, an
/// unknown id has nothing to report).
enum class JobState : std::int64_t {
  Queued = 0,
  Running = 1,
  Done = 2,
  Cancelled = 3,
  Failed = 4,
  Rejected = 5,  ///< wire-only: admission refused
  Unknown = 6,   ///< wire-only: no such job id
};

[[nodiscard]] std::string_view toString(JobState s) noexcept;

/// The result payload of a finished job: core::OptimizationResult minus
/// the trace, marshalable.
struct JobOutcome {
  core::TerminationReason reason = core::TerminationReason::Converged;
  core::Point best;
  double bestEstimate = 0.0;
  std::optional<double> bestTrue;
  std::int64_t iterations = 0;
  std::int64_t totalSamples = 0;
  double elapsedTime = 0.0;
  core::MoveCounters counters;

  void pack(mw::MessageBuffer& buf) const;
  [[nodiscard]] static JobOutcome unpack(mw::MessageBuffer& buf);

  [[nodiscard]] static JobOutcome fromResult(const core::OptimizationResult& res);
  [[nodiscard]] core::OptimizationResult toResult() const;
};

/// Daemon -> client reply riding a JobStatus frame (also the ack for
/// JobSubmit and JobCancel).  `queued`/`running` snapshot the daemon's
/// load so a rejected client can reason about retry timing.
struct StatusReply {
  std::uint64_t jobId = 0;
  JobState state = JobState::Unknown;
  std::string detail;
  bool retryable = false;  ///< rejection was load-based; retry later
  std::int64_t queued = 0;
  std::int64_t running = 0;

  void pack(mw::MessageBuffer& buf) const;
  [[nodiscard]] static StatusReply unpack(mw::MessageBuffer& buf);
};

/// Daemon -> client terminal notification riding a JobResult frame.
struct ResultReply {
  std::uint64_t jobId = 0;
  JobState state = JobState::Failed;
  std::string detail;                 ///< error text for Failed/Cancelled
  std::optional<JobOutcome> outcome;  ///< present when state == Done

  void pack(mw::MessageBuffer& buf) const;
  [[nodiscard]] static ResultReply unpack(mw::MessageBuffer& buf);
};

/// Self-describing sampling task wire: the job id and objective spec
/// prefix, then exactly mw::SamplingTask's input fields.  The worker
/// resolves (or builds) the per-job VertexServer from the prefix and runs
/// the batch; the reply is mw::SamplingTask's chunked result, unchanged.
void packServiceTaskInput(mw::MessageBuffer& buf, std::uint64_t jobId,
                          const ObjectiveSpec& spec,
                          const core::SamplingBackend::BatchRequest& request);

}  // namespace sfopt::service
