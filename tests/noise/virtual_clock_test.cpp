#include "noise/virtual_clock.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using sfopt::noise::VirtualClock;

TEST(VirtualClock, StartsAtZero) {
  VirtualClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock c;
  c.advance(1.5);
  c.advance(2.5);
  EXPECT_DOUBLE_EQ(c.now(), 4.0);
}

TEST(VirtualClock, ZeroAdvanceAllowed) {
  VirtualClock c;
  c.advance(0.0);
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(VirtualClock, NegativeAdvanceThrows) {
  VirtualClock c;
  EXPECT_THROW(c.advance(-1.0), std::invalid_argument);
}

TEST(VirtualClock, ResetReturnsToZero) {
  VirtualClock c;
  c.advance(10.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

}  // namespace
