// Asynchronous evaluation pipeline study: does sharding one dominant
// refinement batch across MW workers actually keep them busy, and does
// speculative prefetch of the next round overlap decide with evaluate?
//
// Part 1 compares mw.worker_idle_fraction and wall time for sharded
// (--shard-min-samples 64) vs unsharded batches at 1, 2 and 4 workers.
// Both arms run through the async scheduler (the unsharded arm uses an
// unreachable shard threshold) so the idle-fraction instrumentation,
// which lives on the async dispatch path, sees the same traffic.
//
// Part 2 runs PC with speculation on/off and reports the speculation hit
// rate alongside engine.pc.rounds_per_comparison — the overlap does not
// change the trajectory (bitwise-equivalence is enforced by tests), so
// the win shows up purely in wall time and worker occupancy.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_json.hpp"
#include "common/harness.hpp"
#include "core/initial_simplex.hpp"
#include "core/sampling_context.hpp"
#include "mw/parallel_runner.hpp"
#include "mw/sampling_service.hpp"
#include "telemetry/telemetry.hpp"

using namespace sfopt;

namespace {

const telemetry::MetricSnapshot* findMetric(const std::vector<telemetry::MetricSnapshot>& all,
                                            const std::string& name) {
  for (const auto& m : all) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

double histogramMean(const std::vector<telemetry::MetricSnapshot>& all,
                     const std::string& name) {
  const auto* m = findMetric(all, name);
  if (m == nullptr || m->count == 0) return 0.0;
  return m->numValue / static_cast<double>(m->count);
}

double gaugeValue(const std::vector<telemetry::MetricSnapshot>& all, const std::string& name) {
  const auto* m = findMetric(all, name);
  return m != nullptr ? m->numValue : 0.0;
}

std::int64_t counterValue(const std::vector<telemetry::MetricSnapshot>& all,
                          const std::string& name) {
  const auto* m = findMetric(all, name);
  return m != nullptr ? m->intValue : 0;
}

struct ShardRow {
  int workers;
  bool sharded;
  double wallSeconds;
  double idleFraction;
  double shardsPerBatch;
  long long samples;
};

/// The paper's worst case for worker occupancy, distilled: every round
/// co-samples one dominant vertex (a big refinement the gate demanded) next
/// to a few small trial refreshes.  Unsharded, the dominant batch is a
/// single indivisible task and W-1 workers wait for it; sharded, its chunks
/// spread across the fleet.  Both arms run through the async scheduler (the
/// unsharded arm uses an unreachable threshold) so the idle-fraction
/// instrumentation sees the same dispatch traffic.
ShardRow runShardArm(int workers, bool sharded) {
  constexpr int kRounds = 24;
  constexpr std::int64_t kDominant = 32'768;
  constexpr std::int64_t kSmall = 64;

  auto objective = bench::noisyRosenbrock(6, 1.0, 8811);
  telemetry::Telemetry spine;

  mw::CommWorld comm(workers + 1);
  std::vector<std::unique_ptr<mw::SamplingWorker>> workerObjs;
  for (int w = 0; w < workers; ++w) {
    workerObjs.push_back(std::make_unique<mw::SamplingWorker>(comm, w + 1, objective, 1));
  }
  std::vector<std::thread> threads;
  for (auto& w : workerObjs) {
    threads.emplace_back([&worker = *w] { worker.run(); });
  }

  mw::MWDriver driver(comm);
  driver.setTelemetry(&spine);
  mw::MWSamplingBackend backend(driver);

  core::SamplingContext::Options o;
  o.backend = &backend;
  o.shardMinSamples = sharded ? 64 : std::numeric_limits<std::int64_t>::max() / 2;
  o.maxSamplesPerVertex = std::numeric_limits<std::int64_t>::max() / 2;
  o.telemetry = &spine;
  core::SamplingContext ctx(objective, o);

  auto dominant = ctx.createVertex(core::Point(6, 0.5), kSmall);
  auto t1 = ctx.createVertex(core::Point(6, -0.5), kSmall);
  auto t2 = ctx.createVertex(core::Point(6, 1.0), kSmall);
  auto t3 = ctx.createVertex(core::Point(6, -1.0), kSmall);

  const auto begin = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    ctx.coSample({{dominant.get(), kDominant},
                  {t1.get(), kSmall},
                  {t2.get(), kSmall},
                  {t3.get(), kSmall}});
  }
  const double wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();

  const auto metrics = spine.metrics().snapshot();
  const ShardRow row{workers, sharded, wallSeconds,
                     histogramMean(metrics, "mw.worker_idle_fraction"),
                     histogramMean(metrics, "eval.shards_per_batch"),
                     static_cast<long long>(ctx.totalSamples())};
  driver.shutdown();
  for (auto& t : threads) t.join();
  return row;
}

struct SpecRow {
  bool speculate;
  double wallSeconds;
  double hitRate;
  long long hits;
  long long misses;
  double roundsPerComparison;
  long long steps;
};

SpecRow runSpeculationArm(bool speculate) {
  auto objective = bench::noisyRosenbrock(4, 3.0, 4422);
  noise::RngStream startRng(422, 7);
  const auto start = core::randomSimplexPoints(4, -2.0, 2.0, startRng);

  core::PCOptions opts;
  opts.common.termination.tolerance = 1e-3;
  opts.common.termination.maxIterations = 80;
  opts.common.termination.maxSamples = 4'000'000;
  opts.common.sampling.maxSamplesPerVertex = 16'384;
  opts.common.sampling.shardMinSamples = 64;
  opts.common.sampling.speculate = speculate;

  telemetry::Telemetry spine;
  opts.common.telemetry = &spine;
  mw::MWRunConfig cfg;
  cfg.workers = 4;
  cfg.telemetry = &spine;

  const auto run = mw::runSimplexOverMW(objective, start, opts, cfg);
  const auto metrics = spine.metrics().snapshot();
  return {speculate,
          run.masterWallSeconds,
          gaugeValue(metrics, "eval.speculation_hit_rate"),
          counterValue(metrics, "eval.speculation_hits"),
          counterValue(metrics, "eval.speculation_misses"),
          histogramMean(metrics, "engine.pc.rounds_per_comparison"),
          static_cast<long long>(run.optimization.iterations)};
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string jsonPath = bench::extractJsonPath(args);
  std::vector<int> workerCounts{1, 2, 4};
  if (!args.empty()) {
    workerCounts.clear();
    for (const auto& a : args) workerCounts.push_back(std::atoi(a.c_str()));
  }

  bench::BenchReport report;
  report.bench = "pipeline_scaling";
  report.repetitions = 1;

  bench::printHeader("Pipeline scaling - sharding one dominant refine across workers");
  std::printf("\n%-8s %-10s %-10s %-12s %-14s %-10s\n", "workers", "sharded", "wall(s)",
              "idle frac", "shards/batch", "samples");
  for (int w : workerCounts) {
    for (const bool sharded : {false, true}) {
      const auto row = runShardArm(w, sharded);
      std::printf("%-8d %-10s %-10.3f %-12.3f %-14.2f %-10lld\n", row.workers,
                  row.sharded ? "yes" : "no", row.wallSeconds, row.idleFraction,
                  row.shardsPerBatch, row.samples);
      const std::string prefix = "pipeline.shard.W" + std::to_string(row.workers) +
                                 (row.sharded ? ".sharded" : ".unsharded");
      report.add(prefix + ".wall_seconds", row.wallSeconds, "s");
      report.add(prefix + ".idle_fraction", row.idleFraction, "fraction");
    }
  }
  std::printf(
      "\nShape check: with several workers and one dominant refine batch per\n"
      "round, the unsharded arm parks the rest of the fleet while the big\n"
      "task runs (high idle fraction); the sharded arm splits it into chunk\n"
      "shards and keeps everyone fed (idle fraction drops, shards/batch\n"
      "approaches (W+3)/4 for this workload).  Occupancy is the honest\n"
      "observable here: in-process workers share this host's cores, so the\n"
      "wall-time win appears on a real fleet, not in this table.  Results\n"
      "are bitwise identical either way (canonical chunk merge).\n");

  bench::printHeader("Speculative prefetch - PC decide/evaluate overlap (4 workers)");
  std::printf("\n%-10s %-10s %-10s %-8s %-8s %-18s %-8s\n", "speculate", "wall(s)",
              "hit rate", "hits", "misses", "rounds/comparison", "steps");
  for (const bool speculate : {false, true}) {
    const auto row = runSpeculationArm(speculate);
    std::printf("%-10s %-10.3f %-10.2f %-8lld %-8lld %-18.2f %-8lld\n",
                row.speculate ? "on" : "off", row.wallSeconds, row.hitRate, row.hits,
                row.misses, row.roundsPerComparison, row.steps);
    const std::string prefix =
        std::string("pipeline.speculate.") + (row.speculate ? "on" : "off");
    report.add(prefix + ".wall_seconds", row.wallSeconds, "s");
    report.add(prefix + ".hit_rate", row.hitRate, "fraction");
  }
  std::printf(
      "\nShape check: speculation pre-stages the next PC round's resample while\n"
      "the engine is still deciding, so a healthy fraction of rounds find their\n"
      "samples already computed (hit rate well above zero).  Staged batches are\n"
      "only charged to the sample counter and virtual clock when consumed, so\n"
      "rounds/comparison and the whole trajectory are identical between the two\n"
      "arms -- the hit rate is pure decide/evaluate overlap.\n");
  if (!jsonPath.empty()) {
    if (!report.writeJson(jsonPath)) return 1;
    std::printf("json: %zu results -> %s\n", report.results.size(), jsonPath.c_str());
  }
  return 0;
}
