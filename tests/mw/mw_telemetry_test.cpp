// MWDriver task-lifecycle telemetry, including the retry path: a
// fault-injecting worker fails its first N tasks, and the telemetry must
// agree with the driver's own requeue accounting while still covering the
// queue-wait / execute / utilization instruments.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mw/mw_driver.hpp"
#include "mw/mw_task.hpp"
#include "mw/mw_worker.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace sfopt::mw;
namespace telemetry = sfopt::telemetry;

class EchoTask final : public MWTask {
 public:
  EchoTask() = default;
  explicit EchoTask(std::int64_t v) : value_(v) {}
  void packInput(MessageBuffer& b) const override { b.pack(value_); }
  void unpackInput(MessageBuffer& b) override { value_ = b.unpackInt64(); }
  void packResult(MessageBuffer& b) const override { b.pack(value_); }
  void unpackResult(MessageBuffer& b) override { result_ = b.unpackInt64(); }
  std::int64_t value_ = 0;
  std::int64_t result_ = -1;
};

/// Fails the first `failures` tasks it sees, then behaves.
class FlakyWorker final : public MWWorker {
 public:
  FlakyWorker(CommWorld& comm, Rank rank, int failures)
      : MWWorker(comm, rank), remainingFailures_(failures) {}

 protected:
  void executeTask(MessageBuffer& in, MessageBuffer& out) override {
    EchoTask t;
    t.unpackInput(in);
    if (remainingFailures_-- > 0) {
      throw std::runtime_error("injected failure");
    }
    t.packResult(out);
  }

 private:
  int remainingFailures_;
};

struct Pool {
  Pool(CommWorld& comm, int workers, int failuresEach) {
    for (int w = 0; w < workers; ++w) {
      objs.push_back(std::make_unique<FlakyWorker>(comm, w + 1, failuresEach));
      threads.emplace_back([this, w] { objs[static_cast<std::size_t>(w)]->run(); });
    }
  }
  ~Pool() {
    for (auto& t : threads) t.join();
  }
  std::vector<std::unique_ptr<FlakyWorker>> objs;
  std::vector<std::thread> threads;
};

class CaptureSink final : public telemetry::EventSink {
 public:
  void emit(const telemetry::Event& e) override { events.push_back(e); }
  std::vector<telemetry::Event> events;
};

TEST(MWTelemetry, RetriesAreCountedAndTaskLifecycleIsObserved) {
  constexpr int kWorkers = 2;
  constexpr int kFailuresEach = 2;
  constexpr std::int64_t kTasks = 12;

  CaptureSink sink;
  telemetry::Telemetry tel(sink);
  CommWorld comm(kWorkers + 1);
  Pool pool(comm, kWorkers, kFailuresEach);
  MWDriver driver(comm);
  driver.setTelemetry(&tel);

  std::vector<EchoTask> tasks;
  for (std::int64_t i = 0; i < kTasks; ++i) tasks.emplace_back(i);
  std::vector<MWTask*> ptrs;
  for (auto& t : tasks) ptrs.push_back(&t);
  driver.executeTasks(ptrs);
  driver.shutdown();

  for (std::int64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(tasks[static_cast<std::size_t>(i)].result_, i);
  }

  // Every injected failure surfaced as a requeue, and the telemetry spine
  // saw exactly what the driver's own accounting saw.
  auto& reg = tel.metrics();
  EXPECT_EQ(driver.tasksRequeued(), kWorkers * kFailuresEach);
  EXPECT_EQ(reg.counter("mw.tasks_requeued").value(),
            static_cast<std::int64_t>(driver.tasksRequeued()));
  EXPECT_EQ(reg.counter("mw.tasks_completed").value(),
            static_cast<std::int64_t>(driver.tasksCompleted()));
  EXPECT_EQ(reg.counter("mw.batches").value(), 1);
  EXPECT_DOUBLE_EQ(reg.gauge("mw.workers").value(), kWorkers);

  // Dispatches = completions + requeues: each failed attempt was itself a
  // dispatch, and the queue-wait/execute histograms observed each one.
  const std::int64_t dispatched = reg.counter("mw.tasks_dispatched").value();
  EXPECT_EQ(dispatched, kTasks + kWorkers * kFailuresEach);
  auto& queueWait = reg.histogram("mw.task.queue_wait_seconds",
                                  telemetry::Histogram::exponentialBounds(1e-6, 10.0, 7));
  EXPECT_EQ(queueWait.count(), dispatched);
  auto& execute = reg.histogram("mw.task.execute_seconds",
                                telemetry::Histogram::exponentialBounds(1e-6, 10.0, 7));
  EXPECT_EQ(execute.count(), kTasks);
  EXPECT_GE(execute.sum(), 0.0);

  // One utilization observation per worker per batch, each in [0, 1]-ish
  // (busy time cannot exceed batch wall time).
  auto& util = reg.histogram("mw.worker.utilization",
                             {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  EXPECT_EQ(util.count(), kWorkers);
  EXPECT_GE(util.sum(), 0.0);
  EXPECT_LE(util.sum(), static_cast<double>(kWorkers) + 1e-9);

  // The batch span is emitted once with the task/worker shape attached.
  std::int64_t batchSpans = 0;
  for (const auto& e : sink.events) {
    if (e.type == "span" && e.name == "mw.batch") {
      ++batchSpans;
      EXPECT_EQ(e.num("tasks"), static_cast<double>(kTasks));
      EXPECT_EQ(e.num("workers"), static_cast<double>(kWorkers));
      EXPECT_GE(e.duration, 0.0);
    }
  }
  EXPECT_EQ(batchSpans, 1);
}

TEST(MWTelemetry, CleanRunRecordsNoRequeues) {
  CaptureSink sink;
  telemetry::Telemetry tel(sink);
  CommWorld comm(3);
  Pool pool(comm, 2, 0);
  MWDriver driver(comm);
  driver.setTelemetry(&tel);

  std::vector<EchoTask> tasks;
  for (std::int64_t i = 0; i < 8; ++i) tasks.emplace_back(i);
  std::vector<MWTask*> ptrs;
  for (auto& t : tasks) ptrs.push_back(&t);
  driver.executeTasks(ptrs);
  driver.shutdown();

  EXPECT_EQ(tel.metrics().counter("mw.tasks_requeued").value(), 0);
  EXPECT_EQ(tel.metrics().counter("mw.tasks_completed").value(), 8);
  EXPECT_EQ(tel.metrics().counter("mw.tasks_dispatched").value(), 8);
}

}  // namespace
