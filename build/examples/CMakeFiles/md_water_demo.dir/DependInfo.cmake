
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/md_water_demo.cpp" "examples/CMakeFiles/md_water_demo.dir/md_water_demo.cpp.o" "gcc" "examples/CMakeFiles/md_water_demo.dir/md_water_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/sfopt_md.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/sfopt_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sfopt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
