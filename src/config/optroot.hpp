#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/point.hpp"

namespace sfopt::config {

/// One simulated system: a directory under $OPTROOT/systems carrying a
/// run.sh for each simulation phase (section 4.2 of the paper).  Phases
/// are nested subdirectories, each with its own run.sh.
struct SystemSpec {
  std::string name;
  std::vector<std::string> phases;  ///< relative phase paths, in launch order
};

/// A property to fit: target value from properties/<name>.val, weight from
/// properties/<name>.wgt (1.0 when absent), and the calculation script.
struct PropertySpec {
  std::string name;
  double target = 0.0;
  double weight = 1.0;
  bool hasScript = false;  ///< properties/<name>.sh exists
};

/// Parsed contents of an $OPTROOT optimization tree:
///
///   $OPTROOT/input             parameter names + d+3 vertex rows
///   $OPTROOT/systems/<sys>/    run.sh (+ nested phase dirs with run.sh)
///   $OPTROOT/properties/       prop*.val, prop*.wgt, prop*.sh
///
/// Subdirectories matching the reserved pattern par[0-9]* are per-vertex
/// working directories created at run time and are never treated as
/// systems or phases.
struct OptRoot {
  std::filesystem::path root;
  std::vector<std::string> parameterNames;
  std::vector<core::Point> initialPoints;
  std::vector<SystemSpec> systems;
  std::vector<PropertySpec> properties;

  [[nodiscard]] std::size_t dimension() const noexcept { return parameterNames.size(); }

  /// Processor count the PBS wrapper would request: one per run.sh found
  /// under systems/ (section 4.2, "Job submission").
  [[nodiscard]] std::size_t runScriptCount() const noexcept;
};

/// Is this directory name reserved for per-vertex workspaces?
[[nodiscard]] bool isReservedParDirectory(const std::string& name) noexcept;

/// Parse the simplex input file: first line holds the d parameter names
/// (whitespace separated); each subsequent non-empty line holds d
/// coordinates.  The paper's format provides d+3 rows (vertices plus two
/// trial slots); at least d+1 are required.
[[nodiscard]] std::pair<std::vector<std::string>, std::vector<core::Point>> parseInputFile(
    const std::filesystem::path& file);

/// Load a full $OPTROOT tree.  Throws std::runtime_error with a pointed
/// message on any contract violation.
[[nodiscard]] OptRoot loadOptRoot(const std::filesystem::path& root);

/// Scaffold a minimal valid $OPTROOT tree (used by examples and tests):
/// writes the input file, one system with a stub run.sh per phase, and one
/// .val/.wgt pair per property.
void writeOptRoot(const std::filesystem::path& root, const OptRoot& contents);

}  // namespace sfopt::config
