#include "mw/parallel_runner.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mw/comm.hpp"
#include "mw/mw_driver.hpp"
#include "mw/sampling_service.hpp"

namespace sfopt::mw {

namespace {

/// Copy the options with the backend plugged in, then dispatch to the
/// matching algorithm entry point.
core::OptimizationResult dispatch(const noise::StochasticObjective& objective,
                                  std::span<const core::Point> initial,
                                  AlgorithmOptions options, core::SamplingBackend* backend) {
  return std::visit(
      [&](auto opts) {
        opts.common.sampling.backend = backend;
        using T = std::decay_t<decltype(opts)>;
        if constexpr (std::is_same_v<T, core::DetOptions>) {
          return core::runDeterministic(objective, initial, opts);
        } else if constexpr (std::is_same_v<T, core::MaxNoiseOptions>) {
          return core::runMaxNoise(objective, initial, opts);
        } else if constexpr (std::is_same_v<T, core::AndersonOptions>) {
          return core::runAnderson(objective, initial, opts);
        } else {
          return core::runPointToPoint(objective, initial, opts);
        }
      },
      std::move(options));
}

}  // namespace

MWRunResult runSimplexOverTransport(const noise::StochasticObjective& objective,
                                    std::span<const core::Point> initial,
                                    const AlgorithmOptions& options, net::Transport& comm,
                                    const MWRunConfig& config) {
  if (config.clientsPerWorker < 1) {
    throw std::invalid_argument("runSimplexOverTransport: clientsPerWorker must be >= 1");
  }
  MWRunResult out;
  {
    MWDriver driver(comm);
    driver.setTelemetry(config.telemetry);
    driver.setRecvTimeout(config.recvTimeoutSeconds);
    MWSamplingBackend backend(driver);
    const auto t0 = std::chrono::steady_clock::now();
    out.optimization = dispatch(objective, initial, options, &backend);
    const auto t1 = std::chrono::steady_clock::now();
    out.masterWallSeconds = std::chrono::duration<double>(t1 - t0).count();
    driver.shutdown();
    out.tasksCompleted = driver.tasksCompleted();
    out.tasksRequeued = driver.tasksRequeued();
  }
  out.allocation =
      ProcessorAllocation{static_cast<std::int64_t>(objective.dimension()),
                          config.clientsPerWorker};
  out.messagesSent = comm.messagesSent();
  out.bytesSent = comm.bytesSent();
  return out;
}

MWRunResult runSimplexOverMW(const noise::StochasticObjective& objective,
                             std::span<const core::Point> initial,
                             const AlgorithmOptions& options, const MWRunConfig& config) {
  const auto d = static_cast<std::int64_t>(objective.dimension());
  const int workers =
      config.workers > 0 ? config.workers : static_cast<int>(d) + 3;
  if (config.clientsPerWorker < 1) {
    throw std::invalid_argument("runSimplexOverMW: clientsPerWorker must be >= 1");
  }

  CommWorld comm(workers + 1);
  std::vector<std::unique_ptr<SamplingWorker>> workerObjs;
  workerObjs.reserve(static_cast<std::size_t>(workers));
  std::vector<std::thread> workerThreads;
  workerThreads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workerObjs.push_back(
        std::make_unique<SamplingWorker>(comm, w + 1, objective, config.clientsPerWorker));
    workerThreads.emplace_back([&, w] { workerObjs[static_cast<std::size_t>(w)]->run(); });
  }

  MWRunResult out = runSimplexOverTransport(objective, initial, options, comm, config);
  for (auto& t : workerThreads) t.join();
  return out;
}

}  // namespace sfopt::mw
