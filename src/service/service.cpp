#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <variant>

#include "core/algorithms.hpp"
#include "mw/sampling_service.hpp"
#include "net/socket.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"

namespace sfopt::service {

OptimizationService::OptimizationService(net::TcpCommWorld& comm, ServiceOptions options)
    : comm_(comm),
      opts_(options),
      table_(options.maxConcurrentJobs, options.maxQueuedJobs) {
  if (opts_.telemetry != nullptr) {
    auto& m = opts_.telemetry->metrics();
    jobsSubmitted_ = &m.counter("service.jobs.submitted");
    jobsRejected_ = &m.counter("service.jobs.rejected");
    jobsCompleted_ = &m.counter("service.jobs.completed");
    jobsCancelled_ = &m.counter("service.jobs.cancelled");
    jobsFailed_ = &m.counter("service.jobs.failed");
    shardsRouted_ = &m.counter("service.shards.routed");
    jobSeconds_ = &m.histogram("service.job.seconds",
                               telemetry::Histogram::exponentialBounds(0.01, 4.0, 10));
    checkpointsWritten_ = &m.counter("service.checkpoints_written");
    recoveredQueued_ = &m.counter("service.recovered_queued");
    recoveredRunning_ = &m.counter("service.recovered_running");
    recoveredFinished_ = &m.counter("service.recovered_finished");
    journalBytes_ = &m.gauge("service.journal_bytes");
    recoverySeconds_ = &m.histogram("service.recovery.seconds",
                                    telemetry::Histogram::exponentialBounds(0.001, 4.0, 10));
  }
  if (!opts_.stateDir.empty()) {
    durable_ = std::make_unique<DurableState>(opts_.stateDir);
    recoverState();
  }
}

OptimizationService::~OptimizationService() {
  // Defensive: run() normally tears everything down, but if it threw we
  // must not destroy the exchange while engine threads still reference it.
  for (auto& [id, rec] : table_.all()) {
    if (rec.state == JobState::Running) {
      exchange_.abort(id, "service destroyed", false);
    }
  }
  for (auto& [id, rec] : table_.all()) {
    if (rec.thread.joinable()) rec.thread.join();
  }
}

double OptimizationService::telNow() const {
  return opts_.telemetry != nullptr ? opts_.telemetry->tracer().now()
                                    : net::monotonicSeconds();
}

void OptimizationService::logLine(const std::string& line) {
  if (opts_.log != nullptr) *opts_.log << line << "\n" << std::flush;
}

void OptimizationService::recoverState() {
  const auto t0 = std::chrono::steady_clock::now();
  DurableState::Recovery recovery;
  try {
    recovery = durable_->recover();
  } catch (const std::exception& e) {
    logLine("recover:  journal unusable (" + std::string(e.what()) + "); starting fresh");
    return;
  }
  std::int64_t queued = 0;
  std::int64_t running = 0;
  std::int64_t finishedJobs = 0;
  for (DurableState::RecoveredJob& job : recovery.jobs) {
    if (job.evicted) {
      table_.markEvicted(job.id, job.state);
      ++finishedJobs;
      continue;
    }
    JobRecord rec;
    rec.id = job.id;
    rec.spec = std::move(job.spec);
    rec.client = -1;  // the submitting client died with the old daemon
    rec.submittedAt = telNow();
    switch (job.state) {
      case JobState::Queued:
        ++queued;
        break;
      case JobState::Running:
        // Re-admitted as queued; promotion resumes it from the snapshot
        // (or from its journaled initial simplex when none exists).
        rec.resume = std::move(job.checkpoint);
        ++running;
        break;
      default:
        rec.state = job.state;
        rec.error = std::move(job.error);
        rec.outcome = std::move(job.outcome);
        rec.finishedAt = rec.submittedAt;
        ++finishedJobs;
        break;
    }
    table_.restore(std::move(rec));
  }
  if (recovery.maxJobId > 0) table_.setNextId(recovery.maxJobId + 1);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (recoveredQueued_ != nullptr) recoveredQueued_->add(queued);
  if (recoveredRunning_ != nullptr) recoveredRunning_->add(running);
  if (recoveredFinished_ != nullptr) recoveredFinished_->add(finishedJobs);
  if (recoverySeconds_ != nullptr) recoverySeconds_->observe(seconds);
  if (journalBytes_ != nullptr) {
    journalBytes_->set(static_cast<double>(durable_->journalBytes()));
  }
  if (recovery.entriesReplayed > 0 || recovery.truncatedTail) {
    logLine("recover:  replayed " + std::to_string(recovery.entriesReplayed) +
            " journal entries (" + std::to_string(queued) + " queued, " +
            std::to_string(running) + " running, " + std::to_string(finishedJobs) +
            " finished)" + (recovery.truncatedTail ? ", torn tail truncated" : ""));
  }
}

std::int64_t OptimizationService::run(const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_relaxed)) {
    ensureDriver();
    exchange_.setParallelism(driver_ ? std::max(driver_->liveWorkerCount(), 1) : 1);
    reapFinished();
    applyRetention();
    handleClients();
    promoteQueued();
    pumpShards();
    progress();
    if (journalBytes_ != nullptr && durable_ != nullptr) {
      journalBytes_->set(static_cast<double>(durable_->journalBytes()));
    }
    if (opts_.maxJobs > 0 && table_.completedCount() >= opts_.maxJobs &&
        !table_.anyActive()) {
      break;
    }
  }
  shutdownAll();
  return table_.completedCount();
}

void OptimizationService::ensureDriver() {
  if (driver_ != nullptr) return;
  if (comm_.size() < 2 || comm_.liveWorkers() < 1) return;
  driver_ = std::make_unique<mw::MWDriver>(comm_);
  driver_->setTelemetry(opts_.telemetry);
  driver_->setRecvTimeout(opts_.recvTimeoutSeconds);
  driver_->setSpeculativeFactor(opts_.speculativeFactor);
  logLine("fleet:    driver up with " + std::to_string(driver_->liveWorkerCount()) +
          " live worker(s)");
}

void OptimizationService::reapFinished() {
  std::deque<FinishedJob> drained;
  {
    const std::lock_guard<std::mutex> lock(finishedMutex_);
    drained.swap(finished_);
  }
  for (FinishedJob& f : drained) {
    JobRecord* rec = table_.find(f.id);
    if (rec == nullptr) continue;
    if (rec->thread.joinable()) rec->thread.join();
    finalizeJob(*rec, f.state, std::move(f.outcome), std::move(f.error));
  }
}

void OptimizationService::finalizeJob(JobRecord& rec, JobState state,
                                      std::optional<JobOutcome> outcome,
                                      std::string error) {
  rec.state = state;
  rec.outcome = std::move(outcome);
  rec.error = std::move(error);
  rec.finishedAt = telNow();
  if (durable_ != nullptr && !(durableShutdown_ && rec.state != JobState::Done)) {
    durable_->recordFinished(rec.id, rec.state, rec.error, rec.outcome);
    durable_->removeJobCheckpoint(rec.id);
  }
  exchange_.closeJob(rec.id);
  // In-flight routes stay: their completions still arrive from the fleet
  // and progress() marks each one shard.discarded (closed job) so the
  // span trees terminate.  fleetFailure clears them if the fleet dies.
  const double started = rec.startedAt != 0.0 ? rec.startedAt : rec.submittedAt;
  if (opts_.telemetry != nullptr) {
    opts_.telemetry->tracer().emitComplete(
        "service.job", started, 0,
        {{"outcome", std::string(toString(rec.state))},
         {"algorithm", rec.spec.algorithm},
         {"function", rec.spec.objective.function}},
        {{"job", static_cast<double>(rec.id)}}, jobTraceNamespace(rec.id));
  }
  if (jobSeconds_ != nullptr) jobSeconds_->observe(rec.finishedAt - started);
  switch (rec.state) {
    case JobState::Done:
      if (jobsCompleted_ != nullptr) jobsCompleted_->add(1);
      break;
    case JobState::Cancelled:
      if (jobsCancelled_ != nullptr) jobsCancelled_->add(1);
      break;
    default:
      if (jobsFailed_ != nullptr) jobsFailed_->add(1);
      break;
  }
  logLine("job " + std::to_string(rec.id) + ": " + std::string(toString(rec.state)) +
          (rec.error.empty() ? "" : " (" + rec.error + ")"));
  notifyResult(rec);
}

void OptimizationService::notifyResult(const JobRecord& rec) {
  if (rec.client < 1) return;
  ResultReply reply;
  reply.jobId = rec.id;
  reply.state = rec.state;
  reply.detail = rec.error;
  reply.outcome = rec.outcome;
  mw::MessageBuffer buf;
  reply.pack(buf);
  try {
    comm_.sendToClient(rec.client, net::FrameType::JobResult, std::move(buf));
  } catch (const std::exception&) {
    // Client id no longer valid; the result stays queryable via status.
  }
}

void OptimizationService::sendStatus(int client, const StatusReply& reply) {
  mw::MessageBuffer buf;
  reply.pack(buf);
  try {
    comm_.sendToClient(client, net::FrameType::JobStatus, std::move(buf));
  } catch (const std::exception&) {
  }
}

void OptimizationService::handleClients() {
  for (auto& req : comm_.takeClientRequests()) {
    switch (req.type) {
      case net::FrameType::JobSubmit:
        handleSubmit(req);
        break;
      case net::FrameType::JobStatus:
        handleStatus(req);
        break;
      case net::FrameType::JobCancel:
        handleCancel(req);
        break;
      case net::FrameType::JobResult:
        handleResultFetch(req);
        break;
      default:
        break;
    }
  }
}

void OptimizationService::handleSubmit(net::TcpCommWorld::ClientRequest& req) {
  StatusReply reply;
  reply.queued = table_.queuedCount();
  reply.running = table_.runningCount();
  JobSpec spec;
  try {
    spec = JobSpec::unpack(req.payload);
    spec.validate();
  } catch (const std::exception& e) {
    reply.state = JobState::Rejected;
    reply.retryable = false;
    reply.detail = e.what();
    if (jobsRejected_ != nullptr) jobsRejected_->add(1);
    sendStatus(req.client, reply);
    return;
  }
  if (exchange_.pendingShards() > opts_.maxPendingShards) {
    reply.state = JobState::Rejected;
    reply.retryable = true;
    reply.detail = "shard backlog over " + std::to_string(opts_.maxPendingShards) +
                   "; retry later";
    if (jobsRejected_ != nullptr) jobsRejected_->add(1);
    sendStatus(req.client, reply);
    return;
  }
  const Admission a = table_.admit(std::move(spec), req.client, telNow());
  if (!a.accepted) {
    reply.state = JobState::Rejected;
    reply.retryable = a.retryable;
    reply.detail = a.message;
    if (jobsRejected_ != nullptr) jobsRejected_->add(1);
    sendStatus(req.client, reply);
    return;
  }
  if (jobsSubmitted_ != nullptr) jobsSubmitted_->add(1);
  JobRecord* rec = table_.find(a.jobId);
  if (durable_ != nullptr) durable_->recordSubmitted(a.jobId, rec->spec);
  logLine("job " + std::to_string(a.jobId) + ": queued (" + rec->spec.algorithm + " " +
          rec->spec.objective.function + " dim " +
          std::to_string(rec->spec.objective.dim) + ", client " +
          std::to_string(req.client) + ")");
  reply.jobId = a.jobId;
  reply.state = JobState::Queued;
  reply.detail = a.message;
  reply.queued = table_.queuedCount();
  reply.running = table_.runningCount();
  sendStatus(req.client, reply);
}

void OptimizationService::handleStatus(net::TcpCommWorld::ClientRequest& req) {
  StatusReply reply;
  reply.queued = table_.queuedCount();
  reply.running = table_.runningCount();
  std::uint64_t id = 0;
  try {
    id = req.payload.unpackUint64();
  } catch (const std::exception&) {
    reply.detail = "malformed status request";
    sendStatus(req.client, reply);
    return;
  }
  if (id == 0) {
    reply.state = JobState::Unknown;
    reply.detail = std::to_string(table_.queuedCount()) + " queued, " +
                   std::to_string(table_.runningCount()) + " running, " +
                   std::to_string(table_.completedCount()) + " finished";
    sendStatus(req.client, reply);
    return;
  }
  JobRecord* rec = table_.find(id);
  if (rec == nullptr) {
    reply.jobId = id;
    if (const JobState* evicted = table_.evictedState(id); evicted != nullptr) {
      reply.state = *evicted;
      reply.detail = "result evicted by --result-retention (final state " +
                     std::string(toString(*evicted)) + "); the journal retains it";
    } else {
      reply.state = JobState::Unknown;
      reply.detail = "no such job";
    }
    sendStatus(req.client, reply);
    return;
  }
  reply.jobId = id;
  reply.state = rec->state;
  reply.detail = rec->error;
  sendStatus(req.client, reply);
}

void OptimizationService::handleResultFetch(net::TcpCommWorld::ClientRequest& req) {
  ResultReply reply;
  try {
    reply.jobId = req.payload.unpackUint64();
  } catch (const std::exception&) {
    reply.state = JobState::Unknown;
    reply.detail = "malformed result request";
  }
  if (reply.detail.empty()) {
    JobRecord* rec = table_.find(reply.jobId);
    if (rec == nullptr) {
      if (const JobState* evicted = table_.evictedState(reply.jobId); evicted != nullptr) {
        reply.state = *evicted;
        reply.detail = "result evicted by --result-retention (final state " +
                       std::string(toString(*evicted)) + "); the journal retains it";
      } else {
        reply.state = JobState::Unknown;
        reply.detail = "no such job";
      }
    } else if (rec->state == JobState::Queued || rec->state == JobState::Running) {
      reply.state = rec->state;
      reply.detail = "not finished";
    } else {
      reply.state = rec->state;
      reply.detail = rec->error;
      reply.outcome = rec->outcome;
    }
  }
  mw::MessageBuffer buf;
  reply.pack(buf);
  try {
    comm_.sendToClient(req.client, net::FrameType::JobResult, std::move(buf));
  } catch (const std::exception&) {
  }
}

void OptimizationService::applyRetention() {
  if (opts_.resultRetention <= 0) return;
  for (const std::uint64_t id :
       table_.evictFinishedOver(static_cast<std::size_t>(opts_.resultRetention))) {
    if (durable_ != nullptr) durable_->recordEvicted(id);
    logLine("job " + std::to_string(id) + ": evicted (result retention)");
  }
}

void OptimizationService::handleCancel(net::TcpCommWorld::ClientRequest& req) {
  StatusReply reply;
  reply.queued = table_.queuedCount();
  reply.running = table_.runningCount();
  std::uint64_t id = 0;
  try {
    id = req.payload.unpackUint64();
  } catch (const std::exception&) {
    reply.detail = "malformed cancel request";
    sendStatus(req.client, reply);
    return;
  }
  reply.jobId = id;
  JobRecord* rec = table_.find(id);
  if (rec == nullptr) {
    reply.state = JobState::Unknown;
    reply.detail = "no such job";
    sendStatus(req.client, reply);
    return;
  }
  if (rec->state == JobState::Queued) {
    finalizeJob(*rec, JobState::Cancelled, std::nullopt, "cancelled before start");
    reply.state = JobState::Cancelled;
    reply.detail = "cancelled";
  } else if (rec->state == JobState::Running) {
    exchange_.abort(id, "cancelled by client", true);
    reply.state = JobState::Running;
    reply.detail = "cancel requested";
  } else {
    reply.state = rec->state;
    reply.detail = "already terminal";
  }
  sendStatus(req.client, reply);
}

void OptimizationService::promoteQueued() {
  while (driver_ != nullptr && table_.runningCount() < table_.maxConcurrent()) {
    JobRecord* rec = table_.nextQueued();
    if (rec == nullptr) break;
    rec->state = JobState::Running;
    rec->startedAt = telNow();
    if (durable_ != nullptr) durable_->recordStarted(rec->id);
    exchange_.openJob(rec->id, static_cast<int>(rec->spec.priority));
    const bool resuming = rec->resume.has_value();
    rec->thread = std::thread([this, id = rec->id, spec = rec->spec,
                               resume = std::move(rec->resume)]() mutable {
      jobMain(id, std::move(spec), std::move(resume));
    });
    rec->resume.reset();
    logLine("job " + std::to_string(rec->id) +
            (resuming ? ": running (resumed from checkpoint)" : ": running"));
  }
}

void OptimizationService::pumpShards() {
  if (driver_ == nullptr) return;
  const std::size_t cap =
      static_cast<std::size_t>(4 * std::max(driver_->liveWorkerCount(), 1) + 4);
  while (driver_->outstanding() < cap) {
    auto batch = exchange_.drainPending(cap - driver_->outstanding());
    if (batch.empty()) break;
    for (auto& shard : batch) {
      const std::uint64_t driverId = driver_->submit(std::move(shard.input), shard.ticket);
      routes_[driverId] = Route{shard.jobId, shard.ticket};
      if (shardsRouted_ != nullptr) shardsRouted_->add(1);
    }
  }
}

void OptimizationService::progress() {
  if (driver_ != nullptr && driver_->outstanding() > 0) {
    std::vector<mw::MWDriver::AsyncCompletion> done;
    try {
      done = driver_->poll(opts_.pollSeconds);
    } catch (const std::exception& e) {
      fleetFailure(e.what());
      return;
    }
    for (auto& c : done) {
      const auto it = routes_.find(c.id);
      if (it == routes_.end()) continue;
      const Route r = it->second;
      routes_.erase(it);
      mw::SamplingTask task;
      task.unpackResult(c.payload);
      auto chunks = task.releaseChunks();
      const auto chunkCount = static_cast<double>(chunks.size());
      const bool folded = exchange_.deliver(r.jobId, r.ticket, std::move(chunks));
      // Terminal markers for the shard span trees (§9.7): the driver ends
      // the lifecycle root when the task completes; the exchange's verdict
      // — folded into its job or dropped because the job closed — finishes
      // the tree so `sfopt trace --verify` holds for service captures too.
      if (opts_.telemetry != nullptr) {
        auto& tracer = opts_.telemetry->tracer();
        std::vector<std::pair<std::string, std::string>> strFields;
        if (!folded) strFields.emplace_back("reason", "closed");
        tracer.emitComplete(folded ? "shard.folded" : "shard.discarded", tracer.now(), 0,
                            std::move(strFields), {{"chunks", chunkCount}}, r.ticket);
      }
    }
  } else {
    // Nothing on the wire to wait for: service the sockets directly so
    // client frames and worker joins still land without a hot spin.
    comm_.pump(opts_.pollSeconds);
  }
}

void OptimizationService::fleetFailure(const std::string& what) {
  logLine("fleet:    failure - " + what);
  for (auto& [id, rec] : table_.all()) {
    if (rec.state == JobState::Running) {
      exchange_.abort(id, "worker fleet lost: " + what, false);
    }
  }
  routes_.clear();
  driver_.reset();
}

void OptimizationService::shutdownAll() {
  // With a state dir, a graceful stop is indistinguishable from a crash
  // as far as the journal is concerned: queued jobs stay journaled as
  // queued and interrupted running jobs keep their Started entry and
  // last snapshot, so the next daemon resumes all of them.
  durableShutdown_ = durable_ != nullptr;
  for (auto& [id, rec] : table_.all()) {
    if (rec.state == JobState::Running) {
      exchange_.abort(id, "service shutting down", false);
    } else if (rec.state == JobState::Queued && durable_ == nullptr) {
      finalizeJob(rec, JobState::Cancelled, std::nullopt, "service shutting down");
    }
  }
  // Wait for every engine thread to unwind and report.
  while (true) {
    reapFinished();
    bool anyRunning = false;
    for (auto& [id, rec] : table_.all()) {
      anyRunning = anyRunning || rec.state == JobState::Running;
    }
    if (!anyRunning) break;
    std::unique_lock<std::mutex> lock(finishedMutex_);
    finishedCv_.wait_for(lock, std::chrono::milliseconds(50),
                         [this] { return !finished_.empty(); });
  }
  if (driver_ != nullptr) {
    try {
      driver_->shutdown();
    } catch (const std::exception& e) {
      logLine("shutdown: " + std::string(e.what()));
    }
  }
}

void OptimizationService::pushFinished(FinishedJob f) {
  {
    const std::lock_guard<std::mutex> lock(finishedMutex_);
    finished_.push_back(std::move(f));
  }
  finishedCv_.notify_all();
}

void OptimizationService::jobMain(std::uint64_t id, JobSpec spec,
                                  std::optional<core::SimplexCheckpoint> resume) noexcept {
  FinishedJob f;
  f.id = id;
  try {
    const noise::NoisyFunction objective = spec.objective.makeObjective();
    ExchangeBackend backend(exchange_, id, spec.objective);
    mw::AlgorithmOptions options = spec.makeOptions();
    std::visit(
        [&](auto& o) {
          o.common.sampling.backend = &backend;
          o.common.telemetry = opts_.telemetry;
          if (resume) o.common.resumeFrom = &*resume;
          if (durable_ != nullptr && opts_.checkpointInterval > 0) {
            o.common.checkpointEvery = opts_.checkpointInterval;
            o.common.checkpointSink = [this, id](const core::SimplexCheckpoint& cp) {
              try {
                durable_->writeJobCheckpoint(id, cp);
                if (checkpointsWritten_ != nullptr) checkpointsWritten_->add(1);
              } catch (const std::exception&) {
                // A failed snapshot only narrows the resume window; the
                // journal still replays the job from its initial simplex.
              }
            };
          }
        },
        options);
    const core::OptimizationResult res = std::visit(
        [&](const auto& o) -> core::OptimizationResult {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, core::DetOptions>) {
            return core::runDeterministic(objective, spec.initial, o);
          } else if constexpr (std::is_same_v<T, core::MaxNoiseOptions>) {
            return core::runMaxNoise(objective, spec.initial, o);
          } else if constexpr (std::is_same_v<T, core::AndersonOptions>) {
            return core::runAnderson(objective, spec.initial, o);
          } else {
            return core::runPointToPoint(objective, spec.initial, o);
          }
        },
        options);
    f.state = JobState::Done;
    f.outcome = JobOutcome::fromResult(res);
  } catch (const JobAborted& e) {
    f.state = e.cancelled() ? JobState::Cancelled : JobState::Failed;
    f.error = e.what();
  } catch (const std::exception& e) {
    f.state = JobState::Failed;
    f.error = e.what();
  }
  pushFinished(std::move(f));
}

}  // namespace sfopt::service
