#pragma once

#include <cstdint>

#include "md/forces.hpp"
#include "md/observables.hpp"
#include "md/system.hpp"

namespace sfopt::telemetry {
class Telemetry;
}

namespace sfopt::md {

/// The two-phase simulation protocol the paper's application study runs at
/// every simplex vertex (section 3.5): "an initial configuration is used
/// to perform an MD equilibration in the NVT ensemble.  The output of this
/// simulation is used to perform a production run in the NVE ensemble",
/// from which pair correlation functions and thermodynamic properties are
/// evaluated.
struct SimulationConfig {
  int molecules = 64;           ///< 64 waters => box edge ~12.4 A at 0.997 g/cc
  double temperatureK = 298.0;
  double densityGramsPerCc = 0.997;
  double dtPs = 0.0005;
  double cutoff = 6.0;          ///< A; must stay below half the box edge
  int equilibrationSteps = 400;
  int productionSteps = 800;
  int sampleEvery = 10;          ///< frames between property samples
  double berendsenTauPs = 0.05;
  std::uint64_t seed = 12345;
  double rdfRMax = 6.0;
  int rdfBins = 60;
  /// Verlet neighbor list for the nonbonded loop; requires
  /// cutoff + neighborSkin <= half the box edge.
  bool useNeighborList = true;
  double neighborSkin = 0.0;  ///< 0 = auto: min(1.0, half-edge - cutoff)
  /// Apply homogeneous-fluid LJ tail corrections to the reported <U> and
  /// <P> (the truncated-and-shifted potential itself is unchanged).
  bool applyTailCorrections = true;
  /// Threads for the nonbonded force loop (1 = the serial path; existing
  /// trajectories are unchanged).  Ignored (clamped to 1) when the box is
  /// too small for a neighbor list, since the parallel kernel partitions
  /// the neighbor pair list.  Results are bitwise reproducible per
  /// thread count via the fixed-order block reduction.
  int forceThreads = 1;
  /// Optional observability spine (non-owning; must outlive the run).
  /// Attaching it folds the MdPerfCounters into the metrics registry as
  /// md.* metrics and emits md.equilibration / md.production phase spans.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Equilibrium averages of one protocol run — the raw material of the
/// paper's water cost function (eq. 3.4).
struct WaterObservables {
  double potentialPerMoleculeKcal = 0.0;  ///< <U> per molecule
  double pressureAtm = 0.0;               ///< <P>
  double temperatureK = 0.0;              ///< <T> over production
  double diffusionCm2PerS = 0.0;          ///< D from oxygen MSD
  RdfCurve gOO;
  RdfCurve gOH;
  RdfCurve gHH;
  double nveDriftKcalPerPs = 0.0;         ///< total-energy drift diagnostic
  int productionFrames = 0;
  /// Statistical inefficiency g of the potential-energy series (sampled
  /// frames are correlated; the effective sample count is frames / g).
  double potentialInefficiency = 1.0;
  /// Blocked (Flyvbjerg-Petersen) standard error of <U> per molecule —
  /// the honest sigma(t) of eq. 1.2 for this observable.
  double potentialStandardError = 0.0;
  /// Force-path perf counters summed over the NVT and NVE phases.
  MdPerfCounters perf;
};

/// Run the NVT-equilibrate / NVE-produce protocol for the given force-field
/// parameters and return the sampled observables.
[[nodiscard]] WaterObservables simulateWater(const WaterParameters& params,
                                             const SimulationConfig& config);

}  // namespace sfopt::md
