file(REMOVE_RECURSE
  "../bench/fig36_powell_pairs"
  "../bench/fig36_powell_pairs.pdb"
  "CMakeFiles/fig36_powell_pairs.dir/fig36_powell_pairs.cpp.o"
  "CMakeFiles/fig36_powell_pairs.dir/fig36_powell_pairs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig36_powell_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
