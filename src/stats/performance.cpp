#include "stats/performance.hpp"

#include <cmath>
#include <stdexcept>

namespace sfopt::stats {

double euclideanDistance(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("euclideanDistance: dimension mismatch");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double euclideanNorm(std::span<const double> a) {
  double s = 0.0;
  for (double v : a) s += v * v;
  return std::sqrt(s);
}

}  // namespace sfopt::stats
