#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <vector>

#include "core/point.hpp"
#include "core/result.hpp"

namespace sfopt::core {

/// Serialized state of one simplex vertex: its location, its noise-stream
/// id and the exact Welford moments of its estimate.
struct VertexCheckpoint {
  Point x;
  std::uint64_t id = 0;
  std::int64_t samples = 0;
  double mean = 0.0;
  double m2 = 0.0;
};

/// A resumable snapshot of an optimization run, taken at an iteration
/// boundary.  Because every noise draw is keyed by (vertexId, sampleIndex)
/// — not by any hidden RNG state — restoring this state reproduces the
/// interrupted run's continuation *exactly*: same moves, same samples,
/// same result.  The resume-equals-uninterrupted property is pinned down
/// by the checkpoint tests.
struct SimplexCheckpoint {
  std::vector<VertexCheckpoint> vertices;
  int contractionLevel = 0;
  std::int64_t iteration = 0;
  double clock = 0.0;
  std::int64_t totalSamples = 0;
  std::uint64_t nextVertexId = 0;
  MoveCounters counters;
};

/// Text serialization (hex-float fields, so doubles round-trip exactly).
/// Format v2: a "sfopt-checkpoint v2" magic line, the simplex body, and a
/// trailing crc32 line guarding every byte before it.  readCheckpoint
/// fails closed — wrong magic, wrong version, a bad checksum, truncation,
/// implausible geometry, or trailing garbage all throw — because the
/// durable-service journal and --resume both feed it untrusted bytes.
void writeCheckpoint(std::ostream& out, const SimplexCheckpoint& cp);
[[nodiscard]] SimplexCheckpoint readCheckpoint(std::istream& in);

/// File convenience wrappers.
void saveCheckpoint(const std::filesystem::path& file, const SimplexCheckpoint& cp);
[[nodiscard]] SimplexCheckpoint loadCheckpoint(const std::filesystem::path& file);

}  // namespace sfopt::core
