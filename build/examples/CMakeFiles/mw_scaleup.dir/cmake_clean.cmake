file(REMOVE_RECURSE
  "CMakeFiles/mw_scaleup.dir/mw_scaleup.cpp.o"
  "CMakeFiles/mw_scaleup.dir/mw_scaleup.cpp.o.d"
  "mw_scaleup"
  "mw_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
