#include "service/job_table.hpp"

#include <algorithm>
#include <utility>

namespace sfopt::service {

JobTable::JobTable(int maxConcurrent, int maxQueued)
    : maxConcurrent_(std::max(maxConcurrent, 1)), maxQueued_(std::max(maxQueued, 0)) {}

Admission JobTable::admit(JobSpec spec, int client, double now) {
  Admission a;
  // A job is admitted when it can run now (a concurrency slot is free) or
  // can wait (the queue has room); anything else is a retryable refusal.
  if (runningCount() >= maxConcurrent_ && queuedCount() >= maxQueued_) {
    a.retryable = true;
    a.message = "service at capacity (" + std::to_string(runningCount()) + " running, " +
                std::to_string(queuedCount()) + " queued); retry later";
    return a;
  }
  const std::uint64_t id = nextId_++;
  JobRecord rec;
  rec.id = id;
  rec.spec = std::move(spec);
  rec.state = JobState::Queued;
  rec.client = client;
  rec.submittedAt = now;
  jobs_.emplace(id, std::move(rec));
  a.accepted = true;
  a.jobId = id;
  a.message = "accepted";
  return a;
}

JobRecord* JobTable::find(std::uint64_t id) {
  const auto it = jobs_.find(id);
  return it != jobs_.end() ? &it->second : nullptr;
}

JobRecord* JobTable::nextQueued() {
  for (auto& [id, rec] : jobs_) {
    if (rec.state == JobState::Queued) return &rec;
  }
  return nullptr;
}

int JobTable::runningCount() const noexcept {
  int n = 0;
  for (const auto& [id, rec] : jobs_) n += rec.state == JobState::Running ? 1 : 0;
  return n;
}

int JobTable::queuedCount() const noexcept {
  int n = 0;
  for (const auto& [id, rec] : jobs_) n += rec.state == JobState::Queued ? 1 : 0;
  return n;
}

std::int64_t JobTable::completedCount() const noexcept {
  std::int64_t n = 0;
  for (const auto& [id, rec] : jobs_) {
    n += (rec.state == JobState::Done || rec.state == JobState::Cancelled ||
          rec.state == JobState::Failed)
             ? 1
             : 0;
  }
  return n;
}

bool JobTable::anyActive() const noexcept {
  return std::any_of(jobs_.begin(), jobs_.end(), [](const auto& kv) {
    return kv.second.state == JobState::Queued || kv.second.state == JobState::Running;
  });
}

}  // namespace sfopt::service
