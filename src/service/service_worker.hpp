#pragma once

#include <cstdint>
#include <list>
#include <memory>

#include "mw/mw_worker.hpp"
#include "mw/vertex_server.hpp"
#include "noise/noisy_function.hpp"
#include "service/job.hpp"

namespace sfopt::service {

/// Worker-side executor for the multi-tenant service: every task is
/// self-describing (job id + ObjectiveSpec + batch), so one worker process
/// serves any number of concurrent jobs with no per-job handshake.  A
/// small LRU cache keeps one VertexServer (and its objective) alive per
/// recently-seen job; sampling stays bitwise reproducible regardless of
/// cache hits because the noise RNG is counter-keyed, not stateful.
class ServiceWorker : public mw::MWWorker {
 public:
  ServiceWorker(net::Transport& comm, mw::Rank rank, int maxCachedJobs = 4);

  [[nodiscard]] std::uint64_t cacheMisses() const noexcept { return cacheMisses_; }

 protected:
  void executeTask(mw::MessageBuffer& in, mw::MessageBuffer& out) override;

 private:
  struct JobServer {
    std::uint64_t jobId = 0;
    std::unique_ptr<noise::NoisyFunction> objective;  ///< outlives the server
    std::unique_ptr<mw::VertexServer> server;
  };

  [[nodiscard]] mw::VertexServer& serverFor(std::uint64_t jobId, const ObjectiveSpec& spec);

  int maxCachedJobs_;
  std::list<JobServer> cache_;  ///< front = most recently used
  std::uint64_t cacheMisses_ = 0;
};

}  // namespace sfopt::service
