#include "md/system.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "noise/rng.hpp"

namespace sfopt::md {

namespace {

/// Rotate v by angle about (unit) axis using Rodrigues' formula.
Vec3 rotate(const Vec3& v, const Vec3& axis, double angle) {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return v * c + cross(axis, v) * s + axis * (dot(axis, v) * (1.0 - c));
}

Vec3 randomUnitVector(noise::RngStream& rng) {
  // Marsaglia rejection on the sphere.
  for (;;) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    const double s = a * a + b * b;
    if (s >= 1.0) continue;
    const double t = 2.0 * std::sqrt(1.0 - s);
    return {a * t, b * t, 1.0 - 2.0 * s};
  }
}

}  // namespace

WaterSystem::WaterSystem(int molecules, PeriodicBox box, WaterParameters params,
                         IntramolecularConstants intra, double cutoff)
    : molecules_(molecules),
      box_(box),
      params_(params),
      intra_(intra),
      cutoff_(cutoff) {
  if (molecules < 2) throw std::invalid_argument("WaterSystem: need at least 2 molecules");
  if (!(cutoff > 0.0)) throw std::invalid_argument("WaterSystem: cutoff must be positive");
  if (cutoff > box_.edge() / 2.0) {
    throw std::invalid_argument("WaterSystem: cutoff exceeds half the box edge");
  }
  positions.assign(static_cast<std::size_t>(sites()), Vec3{});
  velocities.assign(static_cast<std::size_t>(sites()), Vec3{});
  forces.assign(static_cast<std::size_t>(sites()), Vec3{});
}

double WaterSystem::kineticEnergy() const noexcept {
  double twoKe = 0.0;  // amu A^2 / ps^2
  for (int i = 0; i < sites(); ++i) {
    twoKe += massOf(i) * normSquared(velocities[static_cast<std::size_t>(i)]);
  }
  return 0.5 * twoKe / kKcalPerMolInMdUnits;
}

double WaterSystem::temperature() const noexcept {
  const double dof = 3.0 * sites() - 3.0;
  return 2.0 * kineticEnergy() / (dof * kBoltzmann);
}

void WaterSystem::zeroMomentum() noexcept {
  Vec3 p{};
  double m = 0.0;
  for (int i = 0; i < sites(); ++i) {
    p += massOf(i) * velocities[static_cast<std::size_t>(i)];
    m += massOf(i);
  }
  const Vec3 vcm = p * (1.0 / m);
  for (auto& v : velocities) v -= vcm;
}

void WaterSystem::thermalizeVelocities(double temperatureK, std::uint64_t seed) {
  noise::RngStream rng(seed, 0xFEED);
  for (int i = 0; i < sites(); ++i) {
    // sigma_v = sqrt(kB T / m) in A/ps with the kcal/mol conversion.
    const double sv = std::sqrt(kBoltzmann * temperatureK * kKcalPerMolInMdUnits / massOf(i));
    velocities[static_cast<std::size_t>(i)] = {sv * rng.gaussian(), sv * rng.gaussian(),
                                               sv * rng.gaussian()};
  }
  zeroMomentum();
  rescaleTo(temperatureK);
}

void WaterSystem::rescaleTo(double temperatureK) noexcept {
  const double t = temperature();
  if (t <= 0.0) return;
  const double s = std::sqrt(temperatureK / t);
  for (auto& v : velocities) v *= s;
}

WaterSystem buildWaterLattice(int molecules, double densityGramsPerCc, double temperatureK,
                              WaterParameters params, double cutoff, std::uint64_t seed,
                              IntramolecularConstants intra) {
  if (!(densityGramsPerCc > 0.0)) {
    throw std::invalid_argument("buildWaterLattice: density must be positive");
  }
  // Number density in A^-3: rho * N_A / M_w with the unit folding
  // rho[g/cc] * 0.602214 / 18.0154.
  const double numberDensity = densityGramsPerCc * 0.602214076 / 18.01528;
  const double volume = static_cast<double>(molecules) / numberDensity;
  const double edge = std::cbrt(volume);
  PeriodicBox box(edge);
  WaterSystem sys(molecules, box, params, intra, cutoff);

  // Smallest cubic lattice that fits all molecules.
  int perSide = 1;
  while (perSide * perSide * perSide < molecules) ++perSide;
  const double spacing = edge / static_cast<double>(perSide);

  noise::RngStream rng(seed, 0xC0FFEE);
  const double half = intra.angleTheta0 / 2.0;
  // Reference internal geometry: O at origin, H's in a plane.
  const Vec3 h1Ref{intra.bondR0 * std::sin(half), intra.bondR0 * std::cos(half), 0.0};
  const Vec3 h2Ref{-intra.bondR0 * std::sin(half), intra.bondR0 * std::cos(half), 0.0};

  int placed = 0;
  for (int ix = 0; ix < perSide && placed < molecules; ++ix) {
    for (int iy = 0; iy < perSide && placed < molecules; ++iy) {
      for (int iz = 0; iz < perSide && placed < molecules; ++iz) {
        const Vec3 center{(ix + 0.5) * spacing, (iy + 0.5) * spacing, (iz + 0.5) * spacing};
        const Vec3 axis = randomUnitVector(rng);
        const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
        const auto base = static_cast<std::size_t>(placed * kSitesPerMolecule);
        sys.positions[base] = center;
        sys.positions[base + 1] = center + rotate(h1Ref, axis, angle);
        sys.positions[base + 2] = center + rotate(h2Ref, axis, angle);
        ++placed;
      }
    }
  }
  sys.thermalizeVelocities(temperatureK, seed);
  return sys;
}

}  // namespace sfopt::md
