# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig37_pc_k1_vs_k2.
