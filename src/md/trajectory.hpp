#pragma once

#include <filesystem>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "md/system.hpp"

namespace sfopt::md {

/// One frame of an XYZ trajectory.
struct XyzFrame {
  std::string comment;
  std::vector<std::string> elements;
  std::vector<Vec3> positions;
};

/// Write the system's current configuration as one XYZ frame (positions
/// wrapped into the primary cell, element symbols O/H per site).
void writeXyzFrame(std::ostream& out, const WaterSystem& sys, const std::string& comment);

/// Parse every frame of an XYZ stream.  Throws std::runtime_error on
/// malformed input (bad atom counts, short frames, unparsable numbers).
[[nodiscard]] std::vector<XyzFrame> readXyzFrames(std::istream& in);

/// File-backed appending trajectory writer.
class XyzTrajectoryWriter {
 public:
  explicit XyzTrajectoryWriter(const std::filesystem::path& path);

  /// Append one frame; the comment records the simulated time.
  void writeFrame(const WaterSystem& sys, double timePs);

  [[nodiscard]] int framesWritten() const noexcept { return frames_; }

 private:
  std::ofstream out_;
  int frames_ = 0;
};

}  // namespace sfopt::md
