# Empty compiler generated dependencies file for fig318_scaleup.
# This may be replaced when dependencies are built.
