// Drive the molecular dynamics engine directly: build a box of flexible
// 3-site water, equilibrate it at 298 K (NVT, Berendsen), run an NVE
// production phase, and print the thermodynamic / structural / dynamic
// observables that feed the paper's cost function — including an ASCII
// rendering of the oxygen-oxygen radial distribution function.
//
// This is the "one sample" of the MdWaterObjective: a real simulation with
// real statistical noise that decays with simulation length (eq. 1.2).

#include <algorithm>
#include <cstdio>
#include <string>

#include "md/simulation.hpp"

int main(int argc, char** argv) {
  using namespace sfopt::md;

  SimulationConfig config;
  config.molecules = 64;
  config.cutoff = 6.0;
  config.rdfRMax = 6.0;
  config.rdfBins = 60;
  config.equilibrationSteps = argc > 1 ? std::atoi(argv[1]) : 2000;
  config.productionSteps = argc > 2 ? std::atoi(argv[2]) : 3000;
  config.sampleEvery = 10;

  std::printf("simulating %d flexible 3-site waters at %.0f K, %.3f g/cc\n", config.molecules,
              config.temperatureK, config.densityGramsPerCc);
  std::printf("protocol: %d NVT steps then %d NVE steps at dt = %.1f fs\n",
              config.equilibrationSteps, config.productionSteps, config.dtPs * 1000.0);

  const WaterObservables obs = simulateWater(tip4pPublished(), config);

  std::printf("\nobservables (averaged over %d production frames):\n", obs.productionFrames);
  std::printf("  <U>  = %8.2f kcal/mol per molecule\n", obs.potentialPerMoleculeKcal);
  std::printf("  <T>  = %8.1f K\n", obs.temperatureK);
  std::printf("  <P>  = %8.0f atm\n", obs.pressureAtm);
  std::printf("  D    = %8.2e cm^2/s (oxygen MSD, Einstein relation)\n", obs.diffusionCm2PerS);
  std::printf("  NVE drift: %.3f kcal/mol per ps (box total)\n", obs.nveDriftKcalPerPs);

  std::printf("\ng_OO(r):\n");
  double gMax = 1.0;
  for (double g : obs.gOO.g) gMax = std::max(gMax, g);
  for (std::size_t i = 0; i < obs.gOO.r.size(); i += 2) {
    const auto bar = static_cast<int>(obs.gOO.g[i] / gMax * 50.0);
    std::printf("  %5.2f A  %6.3f |%s\n", obs.gOO.r[i], obs.gOO.g[i],
                std::string(static_cast<std::size_t>(std::max(bar, 0)), '#').c_str());
  }
  return 0;
}
