#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sfopt::mw {

/// Typed, self-describing marshaling buffer — the re-implementation of the
/// MW framework's MWRMComm pack/unpack discipline.  Values are packed in
/// order with a type tag; unpacking in a different order or with a
/// different type throws, catching protocol bugs at the boundary instead
/// of corrupting task state.
///
/// The wire format is a flat byte vector with fixed little-endian encoding
/// for every multi-byte field, so a buffer can be handed to any transport
/// (the in-process mailboxes, or the TCP transport in src/net) and decoded
/// on a different host.  Length prefixes are validated against the bytes
/// actually present before anything is allocated, so a truncated or
/// corrupted buffer fails with a clean runtime_error.
class MessageBuffer {
 public:
  MessageBuffer() = default;

  /// Adopt received bytes for unpacking.
  explicit MessageBuffer(std::vector<std::byte> wire);

  // -- packing ------------------------------------------------------------
  void pack(double v);
  void pack(std::int64_t v);
  void pack(std::uint64_t v);
  void pack(const std::string& v);
  void pack(std::span<const double> v);

  // -- unpacking (throws std::runtime_error on type/order mismatch) -------
  [[nodiscard]] double unpackDouble();
  [[nodiscard]] std::int64_t unpackInt64();
  [[nodiscard]] std::uint64_t unpackUint64();
  [[nodiscard]] std::string unpackString();
  [[nodiscard]] std::vector<double> unpackDoubleVector();

  /// True when every packed value has been unpacked.
  [[nodiscard]] bool exhausted() const noexcept { return cursor_ >= bytes_.size(); }

  /// The wire representation (for transports).
  [[nodiscard]] const std::vector<std::byte>& wire() const noexcept { return bytes_; }
  [[nodiscard]] std::vector<std::byte> releaseWire() noexcept { return std::move(bytes_); }

  [[nodiscard]] std::size_t sizeBytes() const noexcept { return bytes_.size(); }

 private:
  enum class Tag : std::uint8_t {
    Double = 1,
    Int64 = 2,
    Uint64 = 3,
    String = 4,
    DoubleVector = 5,
  };

  void putTag(Tag t);
  void expectTag(Tag t);
  void putU64(std::uint64_t v);
  [[nodiscard]] std::uint64_t getU64();
  [[nodiscard]] std::size_t remaining() const noexcept;

  std::vector<std::byte> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace sfopt::mw
