# Empty dependencies file for fig34_traces.
# This may be replaced when dependencies are built.
