#include "mw/mw_driver.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>

namespace sfopt::mw {

MWDriver::MWDriver(CommWorld& comm) : comm_(comm) {
  if (comm_.size() < 2) {
    throw std::invalid_argument("MWDriver: need at least one worker rank");
  }
}

std::vector<MessageBuffer> MWDriver::executeBuffers(std::vector<MessageBuffer> inputs) {
  if (shutDown_) throw std::logic_error("MWDriver: already shut down");
  const std::size_t n = inputs.size();
  std::vector<MessageBuffer> results(n);
  if (n == 0) return results;

  // Per-task state: the framed wire (kept for requeue on worker failure),
  // the result slot, retry count, and the last worker that failed it.
  struct TaskState {
    std::vector<std::byte> wire;
    std::size_t slot = 0;
    int retries = 0;
    Rank lastFailedOn = -1;
  };
  std::unordered_map<std::uint64_t, TaskState> tasks;
  std::deque<std::uint64_t> pending;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t id = nextTaskId_++;
    // Frame: task id, then the caller's payload bytes (the wire format is
    // a flat byte stream, so splicing is a concatenation).
    MessageBuffer framed;
    framed.pack(id);
    std::vector<std::byte> wire = framed.releaseWire();
    const auto& tail = inputs[i].wire();
    wire.insert(wire.end(), tail.begin(), tail.end());
    tasks.emplace(id, TaskState{std::move(wire), i, 0, -1});
    pending.push_back(id);
  }

  // Dynamic dispatch over explicit free/busy worker state.  A worker that
  // failed a task is not handed the same task again while another pairing
  // is possible; when every assignable pairing is excluded and nothing is
  // in flight, the exclusion is waived so progress is guaranteed.
  std::vector<bool> busy(static_cast<std::size_t>(comm_.size()), false);
  int inFlight = 0;
  auto assign = [&](Rank worker, std::size_t pendingIndex) {
    const std::uint64_t id = pending[pendingIndex];
    TaskState& st = tasks.at(id);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pendingIndex));
    comm_.send(0, worker, kTagTask, MessageBuffer(std::vector<std::byte>(st.wire)));
    busy[static_cast<std::size_t>(worker)] = true;
    ++inFlight;
  };
  auto dispatchAll = [&] {
    bool progressed = true;
    while (progressed && !pending.empty()) {
      progressed = false;
      for (Rank w = 1; w < comm_.size() && !pending.empty(); ++w) {
        if (busy[static_cast<std::size_t>(w)]) continue;
        for (std::size_t i = 0; i < pending.size(); ++i) {
          if (tasks.at(pending[i]).lastFailedOn == w) continue;
          assign(w, i);
          progressed = true;
          break;
        }
      }
      if (!progressed && inFlight == 0 && !pending.empty()) {
        // Every remaining pairing is excluded and nobody is working:
        // waive the exclusion for the first free worker.
        for (Rank w = 1; w < comm_.size(); ++w) {
          if (!busy[static_cast<std::size_t>(w)]) {
            assign(w, 0);
            progressed = true;
            break;
          }
        }
      }
    }
  };
  dispatchAll();

  std::size_t done = 0;
  while (done < n) {
    Message msg = comm_.recv(0);
    if (msg.tag == kTagResult) {
      const std::uint64_t id = msg.payload.unpackUint64();
      const auto it = tasks.find(id);
      if (it == tasks.end()) {
        throw std::runtime_error("MWDriver: result for unknown task id");
      }
      results[it->second.slot] = std::move(msg.payload);
      tasks.erase(it);
      ++done;
      ++tasksCompleted_;
      --inFlight;
      busy[static_cast<std::size_t>(msg.source)] = false;
      dispatchAll();
    } else if (msg.tag == kTagError) {
      const std::uint64_t id = msg.payload.unpackUint64();
      const std::string what = msg.payload.unpackString();
      const auto it = tasks.find(id);
      if (it == tasks.end()) {
        throw std::runtime_error("MWDriver: error for unknown task id");
      }
      --inFlight;
      ++tasksRequeued_;
      busy[static_cast<std::size_t>(msg.source)] = false;
      TaskState& st = it->second;
      st.lastFailedOn = msg.source;
      if (++st.retries > maxRetries_) {
        throw std::runtime_error("MWDriver: task failed after " +
                                 std::to_string(maxRetries_) + " retries: " + what);
      }
      pending.push_front(id);
      dispatchAll();
    }
    // Stray tags are ignored.
  }
  return results;
}

void MWDriver::executeTasks(std::span<MWTask* const> tasks) {
  std::vector<MessageBuffer> inputs;
  inputs.reserve(tasks.size());
  for (MWTask* t : tasks) {
    if (t == nullptr) throw std::invalid_argument("MWDriver::executeTasks: null task");
    MessageBuffer buf;
    t->packInput(buf);
    inputs.push_back(std::move(buf));
  }
  auto results = executeBuffers(std::move(inputs));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i]->unpackResult(results[i]);
  }
}

void MWDriver::shutdown() {
  if (shutDown_) return;
  for (Rank w = 1; w < comm_.size(); ++w) {
    comm_.send(0, w, kTagShutdown, MessageBuffer{});
  }
  shutDown_ = true;
}

}  // namespace sfopt::mw
