#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "noise/rng.hpp"

namespace sfopt::noise {

/// A stochastic objective in the sense of the paper's eq. 1.1:
///
///     g(theta) = f(theta) + eps(t),   Var[eps] = sigma0(theta)^2 / t
///
/// where t is the total simulated time spent sampling at theta.  The
/// interface exposes *incremental* sampling: each call to sample() draws one
/// observation of fixed duration sampleDuration(); the running mean of n
/// such observations then has variance sigma0^2 / (n * dt) = sigma0^2 / t,
/// exactly the paper's decay law, while successive refinements of a vertex
/// remain martingale-consistent (more sampling refines, never re-rolls, the
/// estimate).
///
/// Thread-compatibility: sample() must be safe to call concurrently for
/// distinct SampleKey streams (the master-worker runtime evaluates several
/// vertices at once).  Implementations based on CounterRng are stateless
/// and trivially satisfy this.
class StochasticObjective {
 public:
  virtual ~StochasticObjective() = default;

  /// Dimension d of the parameter space.
  [[nodiscard]] virtual std::size_t dimension() const = 0;

  /// Simulated duration of a single sample, in seconds.  Constant per
  /// objective; vertex sampling time is t = n * sampleDuration().
  [[nodiscard]] virtual double sampleDuration() const = 0;

  /// Draw one noisy observation at x.  `key.stream` identifies the vertex
  /// (its unique id), `key.index` the per-vertex sample counter; together
  /// they make every draw reproducible and order-independent.
  [[nodiscard]] virtual double sample(std::span<const double> x, SampleKey key) const = 0;

  /// Noise-free underlying value f(x), when known.  Synthetic test
  /// functions expose it so benches can report the true error R; real
  /// simulation-backed objectives return nullopt.
  [[nodiscard]] virtual std::optional<double> trueValue(std::span<const double> x) const {
    (void)x;
    return std::nullopt;
  }

  /// The inherent noise scale sigma0 at x, when known a priori.  Algorithms
  /// never rely on it (they estimate sigma from the sample stream), but
  /// tests use it to validate the estimators.
  [[nodiscard]] virtual std::optional<double> noiseScale(std::span<const double> x) const {
    (void)x;
    return std::nullopt;
  }
};

}  // namespace sfopt::noise
