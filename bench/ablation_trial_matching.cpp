// Ablation study for a design choice this reproduction had to make and the
// paper leaves implicit: how much a fresh trial vertex is sampled before
// its comparisons.
//
//  * literal reading: trials start from initialSamplesPerVertex and gain
//    samples only through the gates / resample loops (Algorithms 2-4 as
//    printed constrain vertex noise, not trial noise);
//  * precision-matched (the library default): a trial starts with as many
//    samples as the most-sampled simplex vertex, modeling the paper's
//    architecture where the two trial workers sample continuously.
//
// The comparison is run for MN and PC at sigma0 = 1000 on the 4-d
// Rosenbrock function.  See DESIGN.md ("trial vertices").

#include <cstdio>

#include "common/harness.hpp"

using namespace sfopt;

namespace {

bench::RunFn mnWithMatching(bool match) {
  return [match](const noise::StochasticObjective& obj, std::span<const core::Point> start) {
    core::MaxNoiseOptions o = bench::campaignMn();
    o.matchTrialPrecision = match;
    return core::runMaxNoise(obj, start, o);
  };
}

bench::RunFn pcWithMatching(bool match) {
  return [match](const noise::StochasticObjective& obj, std::span<const core::Point> start) {
    core::PCOptions o = bench::campaignPc();
    o.matchTrialPrecision = match;
    return core::runPointToPoint(obj, start, o);
  };
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 100;
  bench::printHeader(
      "Ablation - trial-vertex precision matching (sigma0 = 1000, 4-d Rosenbrock)");

  bench::PairwiseCampaign campaign;
  campaign.trials = trials;
  auto mkObjective = [](std::uint64_t seed) { return bench::noisyRosenbrock(4, 1000.0, seed); };

  const auto mnHist =
      bench::comparePair(campaign, mkObjective, mnWithMatching(true), mnWithMatching(false));
  bench::printComparison("MN: log10(min matched / min literal)", mnHist);

  const auto pcHist =
      bench::comparePair(campaign, mkObjective, pcWithMatching(true), pcWithMatching(false));
  bench::printComparison("PC: log10(min matched / min literal)", pcHist);

  std::printf(
      "\nReading: matching trial precision to the simplex vertices is a strict\n"
      "improvement for MN (whose decision comparisons are otherwise made\n"
      "against a nearly-unsampled trial); PC is less sensitive because its\n"
      "confidence comparisons force trial sampling anyway.\n");
  return 0;
}
