#include "stats/autocorrelation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "noise/rng.hpp"

namespace {

using namespace sfopt::stats;

/// AR(1) process x_t = phi x_{t-1} + e_t with unit innovations.
std::vector<double> ar1(double phi, std::size_t n, std::uint64_t seed) {
  sfopt::noise::RngStream rng(seed, 0);
  std::vector<double> xs(n);
  double x = 0.0;
  // Burn-in so the series starts in the stationary distribution.
  for (int i = 0; i < 200; ++i) x = phi * x + rng.gaussian();
  for (std::size_t i = 0; i < n; ++i) {
    x = phi * x + rng.gaussian();
    xs[i] = x;
  }
  return xs;
}

TEST(Autocorrelation, Validation) {
  EXPECT_THROW((void)autocorrelation({1.0, 2.0}, 5), std::invalid_argument);
  EXPECT_THROW((void)autocorrelation(std::vector<double>(100, 3.0), 5),
               std::invalid_argument);  // zero variance
  EXPECT_THROW((void)integratedAutocorrelationTime({1.0, 2.0, 3.0}), std::invalid_argument);
  EXPECT_THROW((void)blockedStandardError({1.0, 2.0}), std::invalid_argument);
}

TEST(Autocorrelation, LagZeroIsOne) {
  const auto xs = ar1(0.5, 500, 1);
  const auto rho = autocorrelation(xs, 10);
  EXPECT_DOUBLE_EQ(rho[0], 1.0);
}

TEST(Autocorrelation, WhiteNoiseDecorrelates) {
  const auto xs = ar1(0.0, 20000, 2);
  const auto rho = autocorrelation(xs, 5);
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(rho[k], 0.0, 0.03) << "lag " << k;
  }
}

TEST(Autocorrelation, Ar1MatchesTheory) {
  // rho(k) = phi^k for AR(1).
  const double phi = 0.8;
  const auto xs = ar1(phi, 100000, 3);
  const auto rho = autocorrelation(xs, 6);
  for (std::size_t k = 1; k <= 6; ++k) {
    EXPECT_NEAR(rho[k], std::pow(phi, static_cast<double>(k)), 0.05) << "lag " << k;
  }
}

TEST(IntegratedAutocorrelationTime, WhiteNoiseIsOne) {
  const auto xs = ar1(0.0, 20000, 4);
  EXPECT_NEAR(integratedAutocorrelationTime(xs), 1.0, 0.2);
}

TEST(IntegratedAutocorrelationTime, Ar1MatchesTheory) {
  // tau = (1 + phi) / (1 - phi): phi = 0.6 => 4, phi = 0.8 => 9.
  for (double phi : {0.6, 0.8}) {
    const auto xs = ar1(phi, 200000, 5);
    const double expected = (1.0 + phi) / (1.0 - phi);
    EXPECT_NEAR(integratedAutocorrelationTime(xs), expected, expected * 0.2) << "phi " << phi;
  }
}

TEST(StatisticalInefficiency, NeverBelowOne) {
  const auto xs = ar1(0.0, 5000, 6);
  EXPECT_GE(statisticalInefficiency(xs), 1.0);
}

TEST(BlockedStandardError, WhiteNoiseMatchesNaive) {
  const auto xs = ar1(0.0, 16384, 7);
  // Naive SE of i.i.d. unit-variance data: 1/sqrt(n).
  const double expected = 1.0 / std::sqrt(static_cast<double>(xs.size()));
  EXPECT_NEAR(blockedStandardError(xs), expected, expected * 0.4);
}

TEST(BlockedStandardError, CorrelatedSeriesInflated) {
  // For AR(1) the true SE of the mean is sqrt(tau) times the naive one.
  const double phi = 0.8;
  const auto xs = ar1(phi, 65536, 8);
  double var = 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  const double naive = std::sqrt(var / static_cast<double>(xs.size()));
  const double tau = (1.0 + phi) / (1.0 - phi);
  const double expected = naive * std::sqrt(tau);
  const double blocked = blockedStandardError(xs);
  EXPECT_GT(blocked, naive * 1.8);  // clearly inflated vs naive
  EXPECT_NEAR(blocked, expected, expected * 0.5);
}

TEST(BlockedStandardError, AgreesWithInefficiencyFormula) {
  const auto xs = ar1(0.7, 65536, 9);
  double var = 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  const double g = statisticalInefficiency(xs);
  const double viaG = std::sqrt(g * var / static_cast<double>(xs.size()));
  const double blocked = blockedStandardError(xs);
  EXPECT_NEAR(blocked, viaG, viaG * 0.5);
}

}  // namespace
