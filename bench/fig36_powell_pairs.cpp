// Reproduces Figure 3.6: the same three pairwise panels as Figure 3.5
// ((a) MN vs DET, (b) PC vs MN, (c) PC+MN vs PC; sigma0 in {1, 100, 1000};
// 100 random initial simplexes) on the 4-d Powell singular function.

#include <cmath>
#include <cstdio>

#include "common/harness.hpp"
#include "core/initial_simplex.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

using namespace sfopt;

namespace {

double minOf(const core::OptimizationResult& r) {
  return r.bestTrue ? std::fabs(*r.bestTrue) : std::fabs(r.bestEstimate);
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 100;
  bench::printHeader("Figure 3.6 - MN/DET, PC/MN, PC+MN/PC on 4-d Powell (" +
                     std::to_string(trials) + " initial states)");

  for (double sigma0 : {1.0, 100.0, 1000.0}) {
    stats::Histogram mnVsDet(-8.0, 8.0, 16);
    stats::Histogram pcVsMn(-15.0, 5.0, 20);
    stats::Histogram pcmnVsPc(-12.0, 12.0, 24);

    for (int t = 0; t < trials; ++t) {
      noise::RngStream startRng(4077, static_cast<std::uint64_t>(t));
      const auto start = core::randomSimplexPoints(4, -5.0, 5.0, startRng);
      auto objective = bench::noisyPowell(sigma0, 6000 + static_cast<std::uint64_t>(t));

      const double detMin =
          minOf(core::runDeterministic(objective, start, bench::campaignDet()));
      const double mnMin = minOf(core::runMaxNoise(objective, start, bench::campaignMn()));
      const double pcMin =
          minOf(core::runPointToPoint(objective, start, bench::campaignPc()));
      const double pcmnMin =
          minOf(core::runPointToPoint(objective, start, bench::campaignPcMn()));

      mnVsDet.add(stats::logRatio(mnMin, detMin, 8.0));
      pcVsMn.add(stats::logRatio(pcMin, mnMin, 15.0));
      pcmnVsPc.add(stats::logRatio(pcmnMin, pcMin, 12.0));
    }

    bench::printSubHeader("noise sigma0 = " + std::to_string(static_cast<int>(sigma0)));
    bench::printComparison("(a) log10(min MN / min DET)", mnVsDet);
    bench::printComparison("(b) log10(min PC / min MN)", pcVsMn);
    bench::printComparison("(c) log10(min PC+MN / min PC)", pcmnVsPc);
  }
  std::printf(
      "\nPaper shape check: same qualitative ordering as the Rosenbrock panels;\n"
      "Powell's singular Hessian stretches the PC-vs-MN tail further negative\n"
      "(Fig 3.6b reaches log-ratios of -15).\n");
  return 0;
}
