#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/sampling_backend.hpp"
#include "mw/mw_driver.hpp"
#include "mw/mw_task.hpp"
#include "mw/mw_worker.hpp"
#include "mw/vertex_server.hpp"
#include "noise/stochastic_objective.hpp"

namespace sfopt::mw {

/// The concrete MWTask of the optimization service: "evaluate `count`
/// samples of the objective at x for noise stream vertexId, starting at
/// startIndex".  The result travels as canonical per-chunk Welford moments
/// (core::kEvalChunkSamples), never pre-merged, so the master controls the
/// merge order and stays bitwise reproducible across shard counts, client
/// counts and completion orders.
class SamplingTask final : public MWTask {
 public:
  SamplingTask() = default;
  explicit SamplingTask(core::SamplingBackend::BatchRequest request)
      : x_(request.x.begin(), request.x.end()),
        vertexId_(request.vertexId),
        startIndex_(request.startIndex),
        count_(request.count) {}

  void packInput(MessageBuffer& buf) const override;
  void unpackInput(MessageBuffer& buf) override;
  void packResult(MessageBuffer& buf) const override;
  void unpackResult(MessageBuffer& buf) override;

  [[nodiscard]] const std::vector<double>& x() const noexcept { return x_; }
  [[nodiscard]] std::uint64_t vertexId() const noexcept { return vertexId_; }
  [[nodiscard]] std::uint64_t startIndex() const noexcept { return startIndex_; }
  [[nodiscard]] std::int64_t count() const noexcept { return count_; }

  /// The batch's canonical chunk fold (what a synchronous caller absorbs).
  [[nodiscard]] stats::Welford result() const noexcept {
    return core::foldEvalChunks(chunks_);
  }
  /// Single-partial convenience kept for callers that predate chunking.
  void setResult(stats::Welford w) { chunks_ = {w}; }

  [[nodiscard]] const std::vector<stats::Welford>& chunks() const noexcept { return chunks_; }
  void setChunks(std::vector<stats::Welford> chunks) noexcept { chunks_ = std::move(chunks); }
  [[nodiscard]] std::vector<stats::Welford> releaseChunks() noexcept {
    return std::move(chunks_);
  }

 private:
  std::vector<double> x_;
  std::uint64_t vertexId_ = 0;
  std::uint64_t startIndex_ = 0;
  std::int64_t count_ = 0;
  std::vector<stats::Welford> chunks_;
};

/// The concrete MWWorker of the optimization service: unpacks a
/// SamplingTask, runs it through its VertexServer (which fans it out to
/// Ns clients), and packs the per-chunk moments back.
class SamplingWorker final : public MWWorker {
 public:
  SamplingWorker(net::Transport& comm, Rank rank, const noise::StochasticObjective& objective,
                 int clients);

  [[nodiscard]] const VertexServer& server() const noexcept { return server_; }

 protected:
  void executeTask(MessageBuffer& in, MessageBuffer& out) override;

 private:
  VertexServer server_;
};

/// Bridges the optimization core to the MW runtime: every sampling batch
/// the algorithms request becomes a SamplingTask executed on the worker
/// pool.  Plug an instance into SamplingContext::Options::backend.  The
/// async() interface exposes the driver's non-blocking submit/poll path,
/// which is what lets an EvalScheduler shard batches and run speculative
/// rounds over the same deployment.
class MWSamplingBackend final : public core::SamplingBackend {
 public:
  explicit MWSamplingBackend(MWDriver& driver) : driver_(driver), async_(driver) {}

  [[nodiscard]] stats::Welford sampleBatch(const BatchRequest& request) override;
  [[nodiscard]] std::vector<stats::Welford> sampleBatches(
      std::span<const BatchRequest> requests) override;
  [[nodiscard]] core::AsyncSamplingBackend* async() override { return &async_; }

 private:
  /// Thin ticket adapter: SamplingTask marshaling over MWDriver's
  /// submit/poll, chunk lists straight off the wire.
  class AsyncAdapter final : public core::AsyncSamplingBackend {
   public:
    explicit AsyncAdapter(MWDriver& driver) : driver_(driver) {}
    [[nodiscard]] std::uint64_t submit(
        const core::SamplingBackend::BatchRequest& request) override;
    [[nodiscard]] std::vector<Completion> poll(double timeoutSeconds) override;
    [[nodiscard]] int parallelism() const override;

   private:
    MWDriver& driver_;
  };

  MWDriver& driver_;
  AsyncAdapter async_;
};

}  // namespace sfopt::mw
