# Empty compiler generated dependencies file for sfopt_bench_common.
# This may be replaced when dependencies are built.
