#pragma once

#include <iosfwd>

#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"

namespace sfopt::telemetry {

/// Prometheus text exposition (version 0.0.4) of a registry snapshot.
/// Dots in metric names become underscores and everything is prefixed
/// `sfopt_`; histograms expand to the usual `_bucket{le=...}` /
/// `_sum` / `_count` family with a `+Inf` bucket.
void writePrometheusText(const MetricsRegistry& registry, std::ostream& out);

/// Flat CSV summary of a registry snapshot:
///   name,kind,count,sum,value
/// Counters fill `value`, gauges fill `value`, histograms fill
/// `count`/`sum` and leave `value` empty (same empty-field convention as
/// the trace CSVs).
void writeCsvSummary(const MetricsRegistry& registry, std::ostream& out);

/// Emit one "metric" event per registered metric into the sink (the final
/// registry snapshot a JSONL consumer reads next to the span stream).
/// `time` stamps every event.  Returns the number of events emitted.
std::size_t writeMetricEvents(const MetricsRegistry& registry, EventSink& sink, double time);

}  // namespace sfopt::telemetry
