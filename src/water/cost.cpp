#include "water/cost.hpp"

#include <cmath>
#include <stdexcept>

#include "water/experimental.hpp"

namespace sfopt::water {

std::vector<PropertyTarget> defaultWaterTargets() {
  const ExperimentalTargets t = experimentalTargets();
  return {
      {"U", t.internalEnergyKJPerMol, 100.0},
      {"P", t.pressureAtm, 0.003},
      {"D", t.diffusion1e5Cm2PerS, 1.5},
      {"gOO", t.rdfResidualOO, 12.0},
      {"gOH", t.rdfResidualOH, 7.0},
      {"gHH", t.rdfResidualHH, 18.0},
  };
}

double weightedCost(std::span<const double> values, std::span<const PropertyTarget> targets) {
  if (values.size() != targets.size()) {
    throw std::invalid_argument("weightedCost: values/targets size mismatch");
  }
  double g = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double w2 = targets[i].weight * targets[i].weight;
    const double d = values[i] - targets[i].target;
    const double denom = targets[i].target * targets[i].target;
    // Zero-valued targets (RDF residuals) contribute absolutely.
    g += denom > 1e-12 ? w2 * d * d / denom : w2 * d * d;
  }
  return g;
}

std::vector<double> propertyVector(const WaterProperties& p) {
  return {p.internalEnergyKJPerMol, p.pressureAtm,   p.diffusion1e5Cm2PerS,
          p.rdfResidualOO,          p.rdfResidualOH, p.rdfResidualHH};
}

md::WaterParameters paramsFromPoint(std::span<const double> x) {
  if (x.size() != 3) throw std::invalid_argument("paramsFromPoint: needs 3 coordinates");
  return {x[0], x[1], x[2]};
}

WaterCostObjective::WaterCostObjective(Options options)
    : options_(std::move(options)),
      sigmaPerSample_(options_.sigma0 / std::sqrt(options_.sampleDuration)),
      rng_(options_.seed) {
  if (options_.targets.empty()) options_.targets = defaultWaterTargets();
  if (options_.targets.size() != 6) {
    throw std::invalid_argument("WaterCostObjective: needs exactly 6 targets");
  }
  if (!(options_.sampleDuration > 0.0)) {
    throw std::invalid_argument("WaterCostObjective: sampleDuration must be positive");
  }
}

double WaterCostObjective::sample(std::span<const double> x, noise::SampleKey key) const {
  return *trueValue(x) + sigmaPerSample_ * rng_.gaussian(key);
}

std::optional<double> WaterCostObjective::trueValue(std::span<const double> x) const {
  const WaterProperties p = surrogate_.properties(paramsFromPoint(x));
  return weightedCost(propertyVector(p), options_.targets);
}

std::optional<double> WaterCostObjective::noiseScale(std::span<const double>) const {
  return options_.sigma0;
}

std::vector<core::Point> table34InitialPoints() {
  // Table 3.4(a): sigma and qH columns verbatim; epsilon mapped into
  // kcal/mol preserving the table's ordering and relative spread.
  return {
      {0.210, 3.00, 0.54},
      {0.186, 3.40, 0.45},
      {0.125, 3.25, 0.52},
      {0.198, 2.80, 0.60},
      {0.125, 3.25, 0.60},
      {0.198, 2.90, 0.65},
  };
}

}  // namespace sfopt::water
