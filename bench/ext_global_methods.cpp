// Extension bench: the global-strategy layer around the paper's local
// simplex.  Section 1.3.5.1 notes the simplex is used globally "either by
// restarting the simplex or by using it as a local search subroutine
// within a metaheuristic method"; section 1.3.3 surveys SA and PSO.  This
// bench pits the three strategies implemented here against each other on
// the noisy 2-d Rastrigin landscape, starting inside a non-global basin.

#include <cmath>
#include <cstdio>

#include "common/harness.hpp"
#include "core/annealing.hpp"
#include "core/initial_simplex.hpp"
#include "core/pso.hpp"
#include "core/restart.hpp"
#include "stats/summary.hpp"
#include "testfunctions/functions.hpp"

using namespace sfopt;

namespace {

noise::NoisyFunction noisyRastrigin(double sigma0, std::uint64_t seed) {
  noise::NoisyFunction::Options o;
  o.sigma0 = sigma0;
  o.seed = seed;
  return noise::NoisyFunction(
      2, [](std::span<const double> x) { return testfunctions::rastrigin(x); }, o);
}

double val(const core::OptimizationResult& r) {
  return std::fabs(r.bestTrue.value_or(r.bestEstimate));
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 30;
  bench::printHeader("Extension - global strategies on noisy 2-d Rastrigin (bad starts)");

  for (double sigma0 : {0.1, 1.0}) {
    std::vector<double> localOnly;
    std::vector<double> restarted;
    std::vector<double> annealed;
    std::vector<double> swarm;
    for (int t = 0; t < trials; ++t) {
      const auto s = static_cast<std::uint64_t>(t);
      auto obj = noisyRastrigin(sigma0, 7100 + s);
      // Start near a random non-global integer basin.
      noise::RngStream rng(55, s);
      const core::Point origin{static_cast<double>(1 + rng.below(3)),
                               static_cast<double>(1 + rng.below(3))};
      const auto start = core::axisSimplexPoints(origin, 0.4);

      core::PCOptions pc;
      pc.common.termination.tolerance = 1e-4;
      pc.common.termination.maxIterations = 200;
      pc.common.termination.maxSamples = 60'000;
      localOnly.push_back(val(core::runPointToPoint(obj, start, pc)));

      core::RestartOptions ro;
      ro.restarts = 4;
      ro.initialScale = 2.0;
      ro.scaleDecay = 0.7;
      restarted.push_back(
          val(core::runWithRestarts(obj, start, core::makeRunner(pc), ro).best));

      core::AnnealingOptions sa;
      sa.initialTemperature = 20.0;
      sa.coolingRate = 0.92;
      sa.sweepSize = 25;
      sa.stepScale = 1.5;
      sa.termination.tolerance = 1e-3;
      sa.termination.maxIterations = 200;
      sa.termination.maxSamples = 300'000;
      sa.seed = 40 + s;
      annealed.push_back(val(core::runSimulatedAnnealing(obj, origin, sa)));

      core::PsoOptions pso;
      pso.particles = 20;
      pso.resample.maxRoundsPerComparison = 8;
      pso.termination.tolerance = 1e-4;
      pso.termination.maxIterations = 200;
      pso.termination.maxSamples = 300'000;
      pso.seed = 90 + s;
      swarm.push_back(val(core::runParticleSwarm(obj, pso)));
    }
    bench::printSubHeader("noise sigma0 = " + std::to_string(sigma0));
    auto row = [](const char* name, const std::vector<double>& xs) {
      const stats::Summary s(xs);
      std::printf("  %-24s median=%8.4f  p25=%8.4f  p75=%8.4f\n", name, s.median(),
                  s.percentile(25.0), s.percentile(75.0));
    };
    row("PC (single, local)", localOnly);
    row("PC + restarts", restarted);
    row("simulated annealing", annealed);
    row("PSO (confidence)", swarm);
  }
  std::printf(
      "\nReading: a single local simplex stays in its starting basin (values\n"
      "near the local minimum ~1-8); restarts, SA and the confidence PSO all\n"
      "reach the global basin, trading sampling effort differently.\n");
  return 0;
}
