// Engine-layer telemetry: the per-iteration spans, move counters, PC
// comparison-resolution accounting, and the MN wait-gate stall histogram.
// Timing runs on a ManualClock, so nothing here depends on wall time.

#include <gtest/gtest.h>

#include <vector>

#include "core/algorithms.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;

class CaptureSink final : public telemetry::EventSink {
 public:
  void emit(const telemetry::Event& e) override { events.push_back(e); }
  std::vector<telemetry::Event> events;
};

std::int64_t counterValue(telemetry::Telemetry& tel, const char* name) {
  return tel.metrics().counter(name).value();
}

TEST(EngineTelemetry, PcRunCoversCountersSpansAndTrace) {
  CaptureSink sink;
  telemetry::ManualClock clock;
  telemetry::Telemetry tel(sink, clock);

  auto obj = test::noisySphere(2, 1.0);
  core::PCOptions o;
  o.common.termination.tolerance = 0.0;
  o.common.termination.maxIterations = 25;
  o.common.recordTrace = true;
  o.common.telemetry = &tel;
  const auto res = core::runPointToPoint(obj, test::simpleStart(2), o);

  // Counters mirror the result's own accounting exactly.
  EXPECT_EQ(counterValue(tel, "engine.iterations"), res.iterations);
  EXPECT_EQ(counterValue(tel, "engine.moves.reflection"), res.counters.reflections);
  EXPECT_EQ(counterValue(tel, "engine.moves.expansion"), res.counters.expansions);
  EXPECT_EQ(counterValue(tel, "engine.moves.contraction"), res.counters.contractions);
  EXPECT_EQ(counterValue(tel, "engine.moves.collapse"), res.counters.collapses);
  EXPECT_EQ(counterValue(tel, "engine.resample_rounds"), res.counters.resampleRounds);
  EXPECT_EQ(counterValue(tel, "engine.forced_resolutions"), res.counters.forcedResolutions);

  // Every k-sigma decision was accounted: the resolution histogram has one
  // observation per comparison and its sum is the total resample rounds.
  auto& rounds = tel.metrics().histogram("engine.pc.rounds_per_comparison",
                                         {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  EXPECT_EQ(rounds.count(), counterValue(tel, "engine.pc.comparisons"));
  EXPECT_GT(rounds.count(), 0);
  EXPECT_DOUBLE_EQ(rounds.sum(),
                   static_cast<double>(counterValue(tel, "engine.resample_rounds")));

  // Spans: one engine.run root plus one engine.iteration per step, all
  // parented on the run span, with zero duration on the frozen clock.
  std::int64_t runSpans = 0;
  std::int64_t iterSpans = 0;
  std::uint64_t runId = 0;
  for (const auto& e : sink.events) {
    if (e.type != "span") continue;
    if (e.name == "engine.run") {
      ++runSpans;
      runId = e.id;
      EXPECT_EQ(e.str("reason"), toString(res.reason));
      EXPECT_EQ(e.num("iterations"), static_cast<double>(res.iterations));
    } else if (e.name == "engine.iteration") {
      ++iterSpans;
      EXPECT_DOUBLE_EQ(e.duration, 0.0);
      EXPECT_TRUE(e.str("move").has_value());
    }
  }
  EXPECT_EQ(runSpans, 1);
  EXPECT_EQ(iterSpans, res.iterations);
  for (const auto& e : sink.events) {
    if (e.type == "span" && e.name == "engine.iteration") EXPECT_EQ(e.parent, runId);
  }

  // The appended trace columns share the same per-step deltas: wall time is
  // exactly zero on the frozen clock, and the resample rounds sum to the
  // run totals.
  std::int64_t traceRounds = 0;
  for (const auto& r : res.trace.steps()) {
    EXPECT_DOUBLE_EQ(r.wallSeconds, 0.0);
    traceRounds += r.resampleRounds;
  }
  EXPECT_EQ(traceRounds, res.counters.gateWaitRounds + res.counters.resampleRounds);
}

TEST(EngineTelemetry, StepWallSecondsTracksManualClock) {
  CaptureSink sink;
  telemetry::ManualClock clock;
  telemetry::Telemetry tel(sink, clock);

  // Advance the clock inside the objective: every sample costs 0.001
  // manual-clock seconds, so per-iteration wall deltas are nonzero and the
  // histogram sum equals the clock's total advance during the run.
  auto base = test::noisySphere(2, 1.0);
  struct TickingObjective final : noise::StochasticObjective {
    noise::NoisyFunction* inner = nullptr;
    telemetry::ManualClock* clock = nullptr;
    [[nodiscard]] std::size_t dimension() const override { return inner->dimension(); }
    [[nodiscard]] double sampleDuration() const override { return inner->sampleDuration(); }
    [[nodiscard]] double sample(std::span<const double> x,
                                noise::SampleKey key) const override {
      clock->advance(0.001);
      return inner->sample(x, key);
    }
    [[nodiscard]] std::optional<double> trueValue(std::span<const double> x) const override {
      return inner->trueValue(x);
    }
  } obj;
  obj.inner = &base;
  obj.clock = &clock;

  core::MaxNoiseOptions o;
  o.common.termination.tolerance = 0.0;
  o.common.termination.maxIterations = 10;
  o.common.telemetry = &tel;
  const double start = clock.now();
  const auto res = core::runMaxNoise(obj, test::simpleStart(2), o);
  (void)res;

  auto& wall = tel.metrics().histogram("engine.step_wall_seconds",
                                       telemetry::Histogram::exponentialBounds(1e-6, 10.0, 7));
  EXPECT_EQ(wall.count(), res.iterations);
  EXPECT_GT(wall.sum(), 0.0);
  EXPECT_LE(wall.sum(), clock.now() - start);
}

TEST(EngineTelemetry, MaxNoiseGateRecordsStallInVirtualSeconds) {
  CaptureSink sink;
  telemetry::ManualClock clock;
  telemetry::Telemetry tel(sink, clock);

  auto obj = test::noisySphere(2, 5.0);  // noisy: the gate must stall
  core::MaxNoiseOptions o;
  o.common.termination.tolerance = 0.0;
  o.common.termination.maxIterations = 15;
  o.common.telemetry = &tel;
  const auto res = core::runMaxNoise(obj, test::simpleStart(2), o);

  ASSERT_GT(res.counters.gateWaitRounds, 0);
  EXPECT_EQ(counterValue(tel, "engine.gate_wait_rounds"), res.counters.gateWaitRounds);
  auto& stall = tel.metrics().histogram("engine.gate_stall_seconds",
                                        telemetry::Histogram::exponentialBounds(0.1, 10.0, 7));
  // The gate stalls in *virtual* time (the paper's cost model): the manual
  // wall clock never moved, yet the stall histogram accumulated the
  // resampling time charged on the sampling clock.
  EXPECT_GT(stall.count(), 0);
  EXPECT_GT(stall.sum(), 0.0);
  EXPECT_LE(stall.sum(), res.elapsedTime);
}

TEST(EngineTelemetry, NullTelemetryLeavesEngineUninstrumented) {
  auto obj = test::noisySphere(2, 1.0);
  core::PCOptions o;
  o.common.termination.maxIterations = 10;
  o.common.recordTrace = true;
  const auto res = core::runPointToPoint(obj, test::simpleStart(2), o);
  EXPECT_GT(res.iterations, 0);
  // wallSeconds still fills from the fallback steady clock.
  for (const auto& r : res.trace.steps()) EXPECT_GE(r.wallSeconds, 0.0);
}

}  // namespace
