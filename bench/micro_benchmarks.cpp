// Google-benchmark microbenchmarks for the performance-critical pieces:
// objective sampling, simplex bookkeeping, the MW wire protocol, and the
// MD engine's force loop.  These back the efficiency claims in DESIGN.md
// (e.g. "ordering d+1 points is always cheaper than an objective sample").

#include <benchmark/benchmark.h>

#include <memory>

#include "core/initial_simplex.hpp"
#include "core/sampling_context.hpp"
#include "core/simplex.hpp"
#include "md/forces.hpp"
#include "md/integrator.hpp"
#include "md/observables.hpp"
#include "mw/message_buffer.hpp"
#include "noise/noisy_function.hpp"
#include "stats/welford.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "testfunctions/functions.hpp"

namespace {

using namespace sfopt;

void BM_RosenbrockEval(benchmark::State& state) {
  const std::vector<double> x(static_cast<std::size_t>(state.range(0)), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(testfunctions::rosenbrock(x));
  }
}
BENCHMARK(BM_RosenbrockEval)->Arg(4)->Arg(20)->Arg(100);

void BM_NoisySample(benchmark::State& state) {
  noise::NoisyFunction::Options o;
  o.sigma0 = 100.0;
  noise::NoisyFunction f(4, [](std::span<const double> p) { return testfunctions::rosenbrock(p); },
                         o);
  const std::vector<double> x{0.5, 0.5, 0.5, 0.5};
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sample(x, {1, i++}));
  }
}
BENCHMARK(BM_NoisySample);

void BM_WelfordAdd(benchmark::State& state) {
  stats::Welford w;
  double x = 0.0;
  for (auto _ : state) {
    w.add(x);
    x += 0.1;
  }
  benchmark::DoNotOptimize(w.mean());
}
BENCHMARK(BM_WelfordAdd);

void BM_SimplexOrdering(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  noise::NoisyFunction::Options o;
  noise::NoisyFunction f(d, [](std::span<const double> p) { return testfunctions::sphere(p); },
                         o);
  core::SamplingContext ctx(f);
  std::vector<std::unique_ptr<core::Vertex>> vs;
  noise::RngStream rng(1, 0);
  for (const auto& p : core::randomSimplexPoints(d, -2.0, 2.0, rng)) {
    vs.push_back(ctx.createVertex(p, 2));
  }
  core::Simplex s(std::move(vs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.ordering());
  }
}
BENCHMARK(BM_SimplexOrdering)->Arg(4)->Arg(20)->Arg(100);

void BM_SimplexDiameter(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  noise::NoisyFunction::Options o;
  noise::NoisyFunction f(d, [](std::span<const double> p) { return testfunctions::sphere(p); },
                         o);
  core::SamplingContext ctx(f);
  std::vector<std::unique_ptr<core::Vertex>> vs;
  noise::RngStream rng(1, 0);
  for (const auto& p : core::randomSimplexPoints(d, -2.0, 2.0, rng)) {
    vs.push_back(ctx.createVertex(p, 2));
  }
  core::Simplex s(std::move(vs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.diameter());
  }
}
BENCHMARK(BM_SimplexDiameter)->Arg(4)->Arg(20);

void BM_ReflectPoint(benchmark::State& state) {
  const std::vector<double> cent(100, 0.5);
  const std::vector<double> worst(100, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::reflectPoint(cent, worst));
  }
}
BENCHMARK(BM_ReflectPoint);

void BM_MessageBufferRoundTrip(benchmark::State& state) {
  const std::vector<double> payload(static_cast<std::size_t>(state.range(0)), 1.25);
  for (auto _ : state) {
    mw::MessageBuffer buf;
    buf.pack(std::uint64_t{7});
    buf.pack(std::span<const double>(payload));
    benchmark::DoNotOptimize(buf.unpackUint64());
    benchmark::DoNotOptimize(buf.unpackDoubleVector());
  }
}
BENCHMARK(BM_MessageBufferRoundTrip)->Arg(4)->Arg(100);

void BM_MdForceEvaluation(benchmark::State& state) {
  auto sys = md::buildWaterLattice(static_cast<int>(state.range(0)), 0.997, 298.0,
                                   md::tip4pPublished(), 4.0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(md::computeForces(sys));
  }
  state.SetItemsProcessed(state.iterations() * sys.sites() * (sys.sites() - 1) / 2);
}
BENCHMARK(BM_MdForceEvaluation)->Arg(27)->Arg(64);

void BM_MdNeighborRebuild(benchmark::State& state) {
  // range(0): molecules; range(1): 0 = brute-force scan, 1 = cell list.
  auto sys = md::buildWaterLattice(static_cast<int>(state.range(0)), 0.997, 298.0,
                                   md::tip4pPublished(), 4.0, 3);
  const auto strategy = state.range(1) == 0 ? md::NeighborStrategy::kBruteForce
                                            : md::NeighborStrategy::kCellList;
  md::NeighborList list(4.0, 1.0, strategy);
  for (auto _ : state) {
    list.rebuild(sys);
  }
  state.counters["pairs"] = static_cast<double>(list.pairs().size());
  state.counters["cells_per_dim"] = list.cellsPerDim();
  state.counters["avg_occupancy"] = list.averageCellOccupancy();
  state.SetItemsProcessed(state.iterations() * sys.sites());
}
// The cell list needs >= 3 cells/dim: 216 molecules (~18.6 A box) upward
// at the 5 A list radius.
BENCHMARK(BM_MdNeighborRebuild)->Args({64, 0})->Args({216, 0})->Args({216, 1})->Args({512, 0})->Args({512, 1});

void BM_MdForceNeighborList(benchmark::State& state) {
  // range(0): molecules; range(1): force threads (1 = serial path);
  // range(2): 1 = per-evaluation telemetry attached (no-op sink), i.e. the
  // exact instrumentation VelocityVerlet::evaluateForces performs.  The
  // telemetry=1 twins guard the observability overhead claim: with the sink
  // disabled, the cost is a few relaxed atomic adds per force evaluation
  // and must stay under 2% of the uninstrumented kernel time.
  auto sys = md::buildWaterLattice(static_cast<int>(state.range(0)), 0.997, 298.0,
                                   md::tip4pPublished(), 4.0, 3);
  md::NeighborList list(4.0, 1.0);
  list.rebuild(sys);
  const int threads = static_cast<int>(state.range(1));
  md::ParallelForceKernel kernel(threads);
  const bool instrumented = state.range(2) == 1;
  telemetry::Telemetry tel;  // no-op sink, metrics only
  telemetry::Counter* evals = nullptr;
  telemetry::Counter* pairsCounter = nullptr;
  telemetry::Histogram* evalSeconds = nullptr;
  if (instrumented) {
    evals = &tel.metrics().counter("md.force_evaluations");
    pairsCounter = &tel.metrics().counter("md.pairs_evaluated");
    evalSeconds = &tel.metrics().histogram(
        "md.force_eval_seconds", telemetry::Histogram::exponentialBounds(1e-6, 10.0, 7));
  }
  std::int64_t pairs = 0;
  for (auto _ : state) {
    const auto f = kernel.compute(sys, list);
    if (instrumented) {
      evals->add(1);
      pairsCounter->add(f.pairsEvaluated);
      evalSeconds->observe(f.evalSeconds);
    }
    pairs = f.pairsEvaluated;
    benchmark::DoNotOptimize(f.potential);
  }
  state.counters["pairs_per_eval"] = static_cast<double>(pairs);
  state.counters["threads"] = threads;
  state.counters["telemetry"] = instrumented ? 1 : 0;
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_MdForceNeighborList)
    ->Args({216, 1, 0})
    ->Args({216, 1, 1})
    ->Args({216, 4, 0})
    ->Args({512, 1, 0})
    ->Args({512, 1, 1})
    ->Args({512, 2, 0})
    ->Args({512, 4, 0})
    ->Args({512, 4, 1});

void BM_MdStep(benchmark::State& state) {
  auto sys = md::buildWaterLattice(27, 0.997, 298.0, md::tip4pPublished(), 4.0, 3);
  md::VelocityVerlet vv(sys, {.dtPs = 0.0002, .targetTemperatureK = 298.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(vv.step());
  }
}
BENCHMARK(BM_MdStep);

void BM_RdfFrame(benchmark::State& state) {
  auto sys = md::buildWaterLattice(64, 0.997, 298.0, md::tip4pPublished(), 5.0, 3);
  md::RdfAccumulator rdf(5.0, 50);
  for (auto _ : state) {
    rdf.addFrame(sys);
  }
  benchmark::DoNotOptimize(rdf.frames());
}
BENCHMARK(BM_RdfFrame);

}  // namespace

BENCHMARK_MAIN();
