#include "core/engine_base.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sfopt::core::detail {

EngineBase::EngineBase(const noise::StochasticObjective& objective, const CommonOptions& common)
    : objective_(objective), common_(common), ctx_(objective, common.sampling) {
  if (common_.initialSamplesPerVertex < 1) {
    throw std::invalid_argument("EngineBase: initialSamplesPerVertex must be >= 1");
  }
}

Simplex EngineBase::buildInitialSimplex(std::span<const Point> points) {
  const std::size_t d = objective_.dimension();
  if (points.size() != d + 1) {
    throw std::invalid_argument("buildInitialSimplex: need exactly dimension+1 points");
  }
  std::vector<std::unique_ptr<Vertex>> verts;
  verts.reserve(points.size());
  for (const Point& p : points) {
    verts.push_back(ctx_.createVertex(p, common_.initialSamplesPerVertex));
  }
  // All d+1 creations run concurrently on their workers: charge once.
  ctx_.chargeTime(common_.initialSamplesPerVertex);
  return Simplex(std::move(verts));
}

Simplex EngineBase::buildFromCheckpoint(const SimplexCheckpoint& cp) {
  const std::size_t d = objective_.dimension();
  if (cp.vertices.size() != d + 1) {
    throw std::invalid_argument("buildFromCheckpoint: checkpoint has wrong vertex count");
  }
  std::vector<std::unique_ptr<Vertex>> verts;
  verts.reserve(cp.vertices.size());
  for (const VertexCheckpoint& v : cp.vertices) {
    auto vertex = std::make_unique<Vertex>(v.x, v.id);
    vertex->absorb(stats::Welford::fromMoments(v.samples, v.mean, v.m2));
    verts.push_back(std::move(vertex));
  }
  ctx_.restoreAccounting(cp.clock, cp.totalSamples, cp.nextVertexId);
  counters_ = cp.counters;
  Simplex s(std::move(verts));
  for (int i = 0; i < cp.contractionLevel; ++i) s.noteContraction();
  for (int i = 0; i > cp.contractionLevel; --i) s.noteExpansion();
  return s;
}

SimplexCheckpoint EngineBase::snapshot(const Simplex& s, std::int64_t iteration) const {
  SimplexCheckpoint cp;
  cp.vertices.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const Vertex& v = s.at(i);
    cp.vertices.push_back(VertexCheckpoint{v.point(), v.id(), v.sampleCount(), v.mean(),
                                           v.accumulator().sumSquaredDeviations()});
  }
  cp.contractionLevel = s.contractionLevel();
  cp.iteration = iteration;
  cp.clock = ctx_.now();
  cp.totalSamples = ctx_.totalSamples();
  cp.nextVertexId = static_cast<std::uint64_t>(ctx_.verticesCreated()) +
                    ctx_.options().firstVertexId;
  cp.counters = counters_;
  return cp;
}

void EngineBase::maybeCheckpoint(const Simplex& s, std::int64_t iteration) {
  if (common_.checkpointEvery <= 0 || !common_.checkpointSink) return;
  if (iteration % common_.checkpointEvery != 0) return;
  common_.checkpointSink(snapshot(s, iteration));
}

std::unique_ptr<Vertex> EngineBase::createTrial(Point x, std::int64_t samples) {
  auto v = ctx_.createVertex(std::move(x), samples);
  ctx_.chargeTime(v->sampleCount());
  return v;
}

std::int64_t EngineBase::matchedTrialSamples(const Simplex& s) const {
  std::int64_t m = common_.initialSamplesPerVertex;
  for (std::size_t i = 0; i < s.size(); ++i) {
    m = std::max(m, s.at(i).sampleCount());
  }
  return m;
}

void EngineBase::collapse(Simplex& s, std::size_t minIndex) {
  const auto targets = s.collapseTargets(minIndex, common_.coefficients.shrink);
  for (const auto& [idx, p] : targets) {
    auto fresh = ctx_.createVertex(p, common_.initialSamplesPerVertex);
    (void)s.replace(idx, std::move(fresh));
  }
  // The d replacement vertices sample concurrently.
  ctx_.chargeTime(common_.initialSamplesPerVertex);
  s.noteCollapse();
  ++counters_.collapses;
}

std::optional<TerminationReason> EngineBase::shouldStop(const Simplex& s,
                                                        std::int64_t iteration) const {
  const TerminationCriteria& t = common_.termination;
  if (t.tolerance > 0.0 && s.valueSpread() <= t.tolerance) {
    return TerminationReason::Converged;
  }
  if (ctx_.now() >= t.maxTime) return TerminationReason::TimeLimit;
  if (iteration >= t.maxIterations) return TerminationReason::IterationLimit;
  if (t.maxSamples > 0 && ctx_.totalSamples() >= t.maxSamples) {
    return TerminationReason::SampleLimit;
  }
  return std::nullopt;
}

bool EngineBase::timeExhausted() const {
  const TerminationCriteria& t = common_.termination;
  return ctx_.now() >= t.maxTime ||
         (t.maxSamples > 0 && ctx_.totalSamples() >= t.maxSamples);
}

void EngineBase::maybeRecord(const Simplex& s, MoveKind move, std::int64_t iteration) {
  if (!common_.recordTrace) return;
  const auto o = s.ordering();
  StepRecord r;
  r.iteration = iteration;
  r.time = ctx_.now();
  r.bestEstimate = s.at(o.min).mean();
  r.bestTrue = ctx_.trueValue(s.at(o.min));
  r.diameter = s.diameter();
  r.contractionLevel = s.contractionLevel();
  r.move = move;
  r.totalSamples = ctx_.totalSamples();
  trace_.record(std::move(r));
}

OptimizationResult EngineBase::finish(const Simplex& s, std::int64_t iterations,
                                      TerminationReason reason) {
  const auto o = s.ordering();
  OptimizationResult res;
  res.best = s.at(o.min).point();
  res.bestEstimate = s.at(o.min).mean();
  res.bestTrue = ctx_.trueValue(s.at(o.min));
  res.iterations = iterations;
  res.elapsedTime = ctx_.now();
  res.totalSamples = ctx_.totalSamples();
  res.reason = reason;
  res.counters = counters_;
  res.trace = std::move(trace_);
  return res;
}

namespace {

/// Shared scaffolding of both wait gates: repeatedly co-sample all active
/// vertices in growing blocks until `satisfied()` returns true, the time
/// budget dies, or every vertex is capped.
template <typename SatisfiedFn>
void gateWait(EngineBase& eng, Simplex& s, std::span<Vertex* const> activeTrials,
              const ResamplePolicy& policy, SatisfiedFn satisfied) {
  std::int64_t block = std::max<std::int64_t>(policy.initialBlock, 1);
  while (!satisfied()) {
    if (eng.timeExhausted()) return;
    bool anyRoom = false;
    std::vector<SamplingContext::RefineRequest> reqs;
    reqs.reserve(s.size() + activeTrials.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      Vertex& v = s.at(i);
      if (!eng.ctx().atSampleCap(v)) anyRoom = true;
      reqs.push_back({&v, block});
    }
    for (Vertex* t : activeTrials) {
      if (!eng.ctx().atSampleCap(*t)) anyRoom = true;
      reqs.push_back({t, block});
    }
    if (!anyRoom) {
      ++eng.counters().forcedResolutions;
      return;
    }
    eng.ctx().coSample(reqs);
    ++eng.counters().gateWaitRounds;
    block = std::min<std::int64_t>(
        policy.maxBlock, static_cast<std::int64_t>(std::ceil(static_cast<double>(block) *
                                                             std::max(policy.growth, 1.0))));
  }
}

}  // namespace

void maxNoiseGateWait(EngineBase& eng, Simplex& s, std::span<Vertex* const> activeTrials,
                      double k, const ResamplePolicy& policy) {
  gateWait(eng, s, activeTrials, policy, [&] {
    const double maxSig = s.maxSigma(eng.ctx());
    const double internal = s.internalVariance();
    return maxSig * maxSig <= k * internal;
  });
}

void andersonGateWait(EngineBase& eng, Simplex& s, std::span<Vertex* const> activeTrials,
                      double k1, double k2, const ResamplePolicy& policy) {
  gateWait(eng, s, activeTrials, policy, [&] {
    const double level = static_cast<double>(s.contractionLevel());
    const double cutoff = k1 * std::pow(2.0, -level * (1.0 + k2));
    for (std::size_t i = 0; i < s.size(); ++i) {
      const double sig = eng.ctx().sigma(s.at(i));
      if (!(sig * sig < cutoff)) return false;
    }
    return true;
  });
}

}  // namespace sfopt::core::detail
