// Pipeline-equivalence properties: sharding batches across workers and
// speculatively prefetching the next round must not change a single bit of
// the optimization trajectory — the shard/merge discipline (canonical
// 64-sample chunks folded in index order) makes placement, completion
// order, worker count and even mid-shard failures invisible to the result.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/trace_io.hpp"
#include "mw/mw_driver.hpp"
#include "mw/mw_worker.hpp"
#include "mw/parallel_runner.hpp"
#include "mw/sampling_service.hpp"
#include "mw/vertex_server.hpp"
#include "net/tcp_transport.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;

template <typename Opts>
Opts pipelined(Opts o, std::int64_t shardMin = 64, bool speculate = true) {
  o.common.sampling.shardMinSamples = shardMin;
  o.common.sampling.speculate = speculate;
  return o;
}

/// The trace CSV (written at precision 17, so string equality is bit
/// equality) with the host wall-clock column removed — the only column
/// allowed to differ between two runs of the same trajectory.
std::string traceCsvWithoutWallSeconds(const core::OptimizationTrace& trace) {
  std::ostringstream csv;
  core::writeTraceCsv(csv, trace);
  std::istringstream in(csv.str());
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream cols(line);
    std::string col;
    std::string joined;
    for (int i = 0; std::getline(cols, col, ','); ++i) {
      if (i == 8) continue;  // wall_seconds
      if (!joined.empty()) joined += ',';
      joined += col;
    }
    out << joined << '\n';
  }
  return out.str();
}

void expectBitwiseSameRun(const core::OptimizationResult& a, const core::OptimizationResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.totalSamples, b.totalSamples);
  EXPECT_EQ(a.elapsedTime, b.elapsedTime);
  EXPECT_EQ(a.bestEstimate, b.bestEstimate);
  EXPECT_EQ(a.reason, b.reason);
  ASSERT_EQ(a.best.size(), b.best.size());
  for (std::size_t i = 0; i < a.best.size(); ++i) EXPECT_EQ(a.best[i], b.best[i]);
  EXPECT_EQ(traceCsvWithoutWallSeconds(a.trace), traceCsvWithoutWallSeconds(b.trace));
}

/// Trajectory equality against the pure serial (inline-sampling) run: the
/// moves are identical; the estimate may differ in the last bits because
/// the serial path absorbs per sample instead of folding chunk moments.
void expectSameTrajectoryAsSerial(const core::OptimizationResult& mw,
                                  const core::OptimizationResult& serial) {
  EXPECT_EQ(mw.iterations, serial.iterations);
  EXPECT_EQ(mw.totalSamples, serial.totalSamples);
  EXPECT_EQ(mw.elapsedTime, serial.elapsedTime);
  EXPECT_EQ(mw.best, serial.best);
  EXPECT_NEAR(mw.bestEstimate, serial.bestEstimate,
              1e-9 * std::abs(serial.bestEstimate) + 1e-12);
}

TEST(PipelineEquivalence, MnShardedSpeculativeMatchesUnshardedBitwise) {
  auto obj = test::noisyRosenbrock(3, 8.0);
  const auto start = test::simpleStart(3, -1.0, 0.8);
  core::MaxNoiseOptions opts;
  opts.common.termination.tolerance = 1e-2;
  opts.common.termination.maxIterations = 80;
  opts.common.sampling.maxSamplesPerVertex = 20'000;
  opts.common.recordTrace = true;

  const auto plain = mw::runSimplexOverMW(obj, start, opts, mw::MWRunConfig{.workers = 4});
  const auto piped =
      mw::runSimplexOverMW(obj, start, pipelined(opts), mw::MWRunConfig{.workers = 4});
  expectBitwiseSameRun(piped.optimization, plain.optimization);

  const auto serial = core::runMaxNoise(obj, start, opts);
  expectSameTrajectoryAsSerial(piped.optimization, serial);
}

TEST(PipelineEquivalence, DetShardedMatchesUnshardedBitwise) {
  auto obj = test::noisySphere(2, 4.0);  // noisy quadratic bowl
  const auto start = test::simpleStart(2);
  core::DetOptions opts;
  opts.common.termination.tolerance = 1e-2;
  opts.common.termination.maxIterations = 60;
  opts.common.sampling.maxSamplesPerVertex = 20'000;
  opts.common.recordTrace = true;

  const auto plain = mw::runSimplexOverMW(obj, start, opts, mw::MWRunConfig{.workers = 3});
  const auto piped = mw::runSimplexOverMW(obj, start, pipelined(opts, 64, false),
                                          mw::MWRunConfig{.workers = 3});
  expectBitwiseSameRun(piped.optimization, plain.optimization);

  const auto serial = core::runDeterministic(obj, start, opts);
  expectSameTrajectoryAsSerial(piped.optimization, serial);
}

TEST(PipelineEquivalence, PcShardedSpeculativeMatchesUnshardedBitwise) {
  auto obj = test::noisySphere(2, 5.0);
  const auto start = test::simpleStart(2);
  core::PCOptions opts;
  opts.common.termination.tolerance = 1e-2;
  opts.common.termination.maxIterations = 50;
  opts.common.sampling.maxSamplesPerVertex = 20'000;
  opts.common.recordTrace = true;

  const auto plain = mw::runSimplexOverMW(obj, start, opts, mw::MWRunConfig{.workers = 4});
  const auto piped =
      mw::runSimplexOverMW(obj, start, pipelined(opts), mw::MWRunConfig{.workers = 4});
  expectBitwiseSameRun(piped.optimization, plain.optimization);

  const auto serial = core::runPointToPoint(obj, start, opts);
  expectSameTrajectoryAsSerial(piped.optimization, serial);
}

TEST(PipelineEquivalence, PcRosenbrockSpeculationAlsoBitwise) {
  auto obj = test::noisyRosenbrock(3, 6.0);
  const auto start = test::simpleStart(3, -1.0, 0.8);
  core::PCOptions opts;
  opts.common.termination.tolerance = 1e-2;
  opts.common.termination.maxIterations = 40;
  opts.common.sampling.maxSamplesPerVertex = 10'000;
  opts.common.recordTrace = true;

  const auto plain = mw::runSimplexOverMW(obj, start, opts, mw::MWRunConfig{.workers = 4});
  const auto piped =
      mw::runSimplexOverMW(obj, start, pipelined(opts), mw::MWRunConfig{.workers = 4});
  expectBitwiseSameRun(piped.optimization, plain.optimization);
}

/// Sampling worker that reports errors on its first `failures` tasks (the
/// driver requeues each failed shard elsewhere), then behaves.
class FlakySamplingWorker final : public mw::MWWorker {
 public:
  FlakySamplingWorker(net::Transport& comm, mw::Rank rank,
                      const noise::StochasticObjective& objective, int clients, int failures)
      : MWWorker(comm, rank), server_(objective, clients), remainingFailures_(failures) {}

 protected:
  void executeTask(mw::MessageBuffer& in, mw::MessageBuffer& out) override {
    if (remainingFailures_-- > 0) throw std::runtime_error("injected shard failure");
    mw::SamplingTask task;
    task.unpackInput(in);
    task.setChunks(server_.runBatchChunks(
        {task.x(), task.vertexId(), task.startIndex(), task.count()}));
    task.packResult(out);
  }

 private:
  mw::VertexServer server_;
  int remainingFailures_;
};

TEST(PipelineEquivalence, RequeuedShardsKeepTheRunBitwiseIdentical) {
  auto obj = test::noisySphere(2, 3.0);
  const auto start = test::simpleStart(2);
  core::MaxNoiseOptions opts;
  opts.common.termination.tolerance = 1e-2;
  opts.common.termination.maxIterations = 40;
  opts.common.sampling.maxSamplesPerVertex = 20'000;
  opts.common.recordTrace = true;

  const auto healthy =
      mw::runSimplexOverMW(obj, start, pipelined(opts), mw::MWRunConfig{.workers = 3});

  // Same pipelined run, but one worker fails its first three shards.
  mw::CommWorld comm(4);
  std::vector<std::thread> threads;
  FlakySamplingWorker flaky(comm, 1, obj, 1, 3);
  mw::SamplingWorker ok2(comm, 2, obj, 1);
  mw::SamplingWorker ok3(comm, 3, obj, 1);
  threads.emplace_back([&flaky] { flaky.run(); });
  threads.emplace_back([&ok2] { ok2.run(); });
  threads.emplace_back([&ok3] { ok3.run(); });
  const auto flakyRun =
      mw::runSimplexOverTransport(obj, start, pipelined(opts), comm, mw::MWRunConfig{});
  for (auto& t : threads) t.join();

  EXPECT_GE(flakyRun.tasksRequeued, 1u);
  expectBitwiseSameRun(flakyRun.optimization, healthy.optimization);
}

/// Thrown past MWWorker::run()'s catch(std::exception): the worker
/// "crashes" mid-shard and the master only learns from the dead socket.
struct Die {};

class DyingSamplingWorker final : public mw::MWWorker {
 public:
  DyingSamplingWorker(net::Transport& comm, mw::Rank rank,
                      const noise::StochasticObjective& objective, int clients, bool die)
      : MWWorker(comm, rank), server_(objective, clients), die_(die) {}

 protected:
  void executeTask(mw::MessageBuffer& in, mw::MessageBuffer& out) override {
    if (die_) throw Die{};
    mw::SamplingTask task;
    task.unpackInput(in);
    task.setChunks(server_.runBatchChunks(
        {task.x(), task.vertexId(), task.startIndex(), task.count()}));
    task.packResult(out);
  }

 private:
  mw::VertexServer server_;
  bool die_;
};

TEST(PipelineEquivalence, WorkerKilledMidShardOverTcpStaysBitwiseIdentical) {
  auto obj = test::noisySphere(2, 3.0);
  const auto start = test::simpleStart(2);
  core::MaxNoiseOptions opts;
  opts.common.termination.tolerance = 1e-2;
  opts.common.termination.maxIterations = 25;
  opts.common.termination.maxSamples = 30'000;
  opts.common.sampling.maxSamplesPerVertex = 10'000;
  opts.common.recordTrace = true;

  const auto healthy =
      mw::runSimplexOverMW(obj, start, pipelined(opts), mw::MWRunConfig{.workers = 2});

  net::TcpCommWorld master(0);
  const std::uint16_t port = master.port();
  std::vector<std::thread> threads;
  for (const bool die : {true, false, false}) {
    threads.emplace_back([port, &obj, die] {
      try {
        net::TcpWorkerTransport transport("127.0.0.1", port);
        DyingSamplingWorker worker(transport, transport.rank(), obj, 1, die);
        worker.run();
      } catch (const Die&) {
        // Crash: the transport dies with the stack frame, mid-shard.
      } catch (const net::ConnectionLost&) {
      }
    });
    (void)master.waitForWorkers(master.liveWorkers() + 1, 10.0);
  }

  mw::MWRunConfig cfg;
  cfg.recvTimeoutSeconds = 30.0;
  const auto overTcp =
      mw::runSimplexOverTransport(obj, start, pipelined(opts), master, cfg);
  for (auto& t : threads) t.join();

  EXPECT_GE(overTcp.tasksRequeued, 1u);
  expectBitwiseSameRun(overTcp.optimization, healthy.optimization);
}

}  // namespace
