
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_global_methods.cpp" "bench-build/CMakeFiles/ext_global_methods.dir/ext_global_methods.cpp.o" "gcc" "bench-build/CMakeFiles/ext_global_methods.dir/ext_global_methods.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/sfopt_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sfopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/sfopt_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sfopt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/testfunctions/CMakeFiles/sfopt_testfunctions.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
