#pragma once

#include <cstdint>
#include <span>

#include "simd/force_kernel.hpp"
#include "simd/isa.hpp"
#include "stats/welford.hpp"

namespace sfopt::telemetry {
class Telemetry;
}

namespace sfopt::simd {

/// Accumulate one sample chunk with the active ISA's Welford kernel.
/// Under Isa::Scalar this is the sequential Welford::add stream bit for
/// bit; each vector ISA pins its own canonical lane order (see
/// kernels.hpp), so chunk moments are bitwise reproducible within an ISA
/// no matter which thread or worker computed the chunk.
[[nodiscard]] stats::Welford welfordChunk(std::span<const double> samples);

/// Evaluate one block of nonbonded pairs with the active ISA's kernel.
/// Per-pair outputs only; the caller owns all accumulation order.
void forcePairBlock(const ForceConstants& c, const ForcePairBlockIn& in,
                    const ForcePairBlockOut& out);

/// Process-wide dispatch totals (relaxed counters; for telemetry/tests).
struct DispatchCounts {
  std::int64_t welfordChunks = 0;  ///< welfordChunk calls
  std::int64_t forceBlocks = 0;    ///< forcePairBlock calls
};
[[nodiscard]] DispatchCounts dispatchCounts() noexcept;

/// Publish the active ISA and dispatch totals into a metrics registry:
///   simd.isa                    gauge, numeric Isa enum value
///   simd.dispatch.welford_chunks gauge, total dispatched chunks
///   simd.dispatch.force_blocks   gauge, total dispatched pair blocks
void publishTelemetry(telemetry::Telemetry& telemetry);

}  // namespace sfopt::simd
