#pragma once

#include <iosfwd>

#include "arg_parser.hpp"

namespace sfopt::tools {

/// The sfopt CLI command layer: each command is a pure function of parsed
/// args writing its report to `out`, so the test suite can drive it
/// without spawning processes.  Returns a process exit code.

/// `sfopt optimize` — run one of the stochastic simplex variants (or PSO /
/// simulated annealing) on a built-in test function.
int runOptimizeCommand(const Args& args, std::ostream& out);

/// `sfopt serve` — distributed master: bind a TCP port, wait for
/// `--workers` worker processes to register, then run the simplex
/// optimization with sampling farmed out over them.  Results are bitwise
/// identical to the in-process `optimize --mw` run of the same options.
int runServeCommand(const Args& args, std::ostream& out);

/// `sfopt submit` — client of the multi-tenant daemon (`serve --daemon`):
/// build a job from the same flags and defaults `optimize` uses, submit it
/// over TCP, and (unless `--detach`) wait for the result and print it in
/// `optimize`'s exact format, so the two diff bitwise.  A load-based
/// rejection exits 3 (retryable), a validation rejection 2.
int runSubmitCommand(const Args& args, std::ostream& out);

/// `sfopt status` — query the daemon about one job (`--job N`) or the
/// whole service (no `--job`).
int runStatusCommand(const Args& args, std::ostream& out);

/// `sfopt cancel` — request cancellation of a queued or running job.
int runCancelCommand(const Args& args, std::ostream& out);

/// `sfopt worker` — distributed worker: connect to a master, receive the
/// objective configuration in the handshake greeting, and serve sampling
/// tasks until shutdown.  Reconnects with backoff when the connection
/// drops (disable with `--reconnect false`).
int runWorkerCommand(const Args& args, std::ostream& out);

/// `sfopt chaosproxy` — fault-injecting TCP proxy between workers and a
/// master/daemon: relays `--port` to `--target-host:--target-port` under a
/// named, seeded `--scenario` (partition-heal, blackhole-up/-down,
/// delay-duplicate, midframe-stall, none).  Runs until SIGTERM/SIGINT or
/// `--duration` seconds, then prints the chaos counters.  The partition
/// chaos CI smoke drives the shipped binaries through it.
int runChaosProxyCommand(const Args& args, std::ostream& out);

/// `sfopt water` — the TIP4P reparameterization application.
int runWaterCommand(const Args& args, std::ostream& out);

/// `sfopt probe` — estimate the noise scale of a test function at a point.
int runProbeCommand(const Args& args, std::ostream& out);

/// `sfopt md` — run one NVT/NVE water protocol directly (the per-sample
/// kernel of the MD-backed objective); reports observables and the
/// force-path perf counters, including the `--force-threads` parallel
/// nonbonded loop and the cell-list neighbor build.
int runMdCommand(const Args& args, std::ostream& out);

/// `sfopt metrics` — summarize a `--telemetry-out` JSONL capture: span
/// roll-ups (count/total/mean/max), final metric values, a per-rank fleet
/// table, and which instrumented layers the file covers.
int runMetricsCommand(const Args& args, std::ostream& out);

/// `sfopt trace` — merge the master's and workers' `--telemetry-out`
/// captures of one distributed run, align worker clocks via the heartbeat
/// offset estimates, reassemble each shard's cross-process span tree, and
/// report critical-path / utilization / straggler breakdowns.  With
/// `--verify`, exits nonzero when any span tree is incomplete.
int runTraceCommand(const Args& args, std::ostream& out);

/// `sfopt info` — list algorithms, functions and build configuration.
int runInfoCommand(const Args& args, std::ostream& out);

/// Dispatch on args.command(); prints usage on unknown/missing commands.
int runCli(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err);

}  // namespace sfopt::tools
