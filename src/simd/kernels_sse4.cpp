// SSE4.1 kernels (2-lane double).  Compiled with -msse4.1 and
// -ffp-contract=off: every lane op is an explicit IEEE instruction, so a
// pair/sample's result depends only on its own inputs, never on which
// lane or block position it landed in.

#if defined(__x86_64__) || defined(__i386__)

#include <smmintrin.h>

#include "simd/kernels.hpp"
#include "stats/welford.hpp"

namespace sfopt::simd::detail {

void welfordChunkSse4(const double* samples, std::int64_t count, std::int64_t* outN,
                      double* outMean, double* outM2) {
  const std::int64_t main = count - count % 2;
  __m128d cnt = _mm_setzero_pd();
  __m128d mean = _mm_setzero_pd();
  __m128d m2 = _mm_setzero_pd();
  const __m128d one = _mm_set1_pd(1.0);
  for (std::int64_t k = 0; k < main; k += 2) {
    const __m128d x = _mm_loadu_pd(samples + k);
    cnt = _mm_add_pd(cnt, one);
    const __m128d delta = _mm_sub_pd(x, mean);
    mean = _mm_add_pd(mean, _mm_div_pd(delta, cnt));
    m2 = _mm_add_pd(m2, _mm_mul_pd(delta, _mm_sub_pd(x, mean)));
  }
  alignas(16) double cntL[2];
  alignas(16) double meanL[2];
  alignas(16) double m2L[2];
  _mm_store_pd(cntL, cnt);
  _mm_store_pd(meanL, mean);
  _mm_store_pd(m2L, m2);
  // Canonical reduction: fold lanes 0..1 in order, then the tail samples
  // sequentially.
  stats::Welford merged;
  for (int l = 0; l < 2; ++l) {
    merged.merge(
        stats::Welford::fromMoments(static_cast<std::int64_t>(cntL[l]), meanL[l], m2L[l]));
  }
  for (std::int64_t k = main; k < count; ++k) merged.add(samples[k]);
  *outN = merged.count();
  *outMean = merged.mean();
  *outM2 = merged.sumSquaredDeviations();
}

void forcePairBlockSse4(const ForceConstants& c, const ForcePairBlockIn& in,
                        const ForcePairBlockOut& out) {
  const __m128d edge = _mm_set1_pd(c.boxEdge);
  const __m128d invEdge = _mm_set1_pd(c.invBoxEdge);
  const __m128d rcV = _mm_set1_pd(c.rc);
  const __m128d rc2V = _mm_set1_pd(c.rc2);
  const __m128d invRcV = _mm_set1_pd(c.invRc);
  const __m128d invRc2V = _mm_set1_pd(c.invRc2);
  const __m128d s2V = _mm_set1_pd(c.s2);
  const __m128d eps4V = _mm_set1_pd(c.eps4);
  const __m128d eps24V = _mm_set1_pd(c.eps24);
  const __m128d ljErcV = _mm_set1_pd(c.ljErc);
  const __m128d ljFrcV = _mm_set1_pd(c.ljFrc);
  const __m128d qScaleV = _mm_set1_pd(c.coulombScale);
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d two = _mm_set1_pd(2.0);
  const __m128d half = _mm_set1_pd(0.5);
  const __m128d zero = _mm_setzero_pd();

  for (std::int64_t k = 0; k < in.count; k += 2) {
    const auto i0 = static_cast<std::size_t>(in.i[k]);
    const auto i1 = static_cast<std::size_t>(in.i[k + 1]);
    const auto j0 = static_cast<std::size_t>(in.j[k]);
    const auto j1 = static_cast<std::size_t>(in.j[k + 1]);

    __m128d dx = _mm_sub_pd(_mm_set_pd(in.x[i1], in.x[i0]), _mm_set_pd(in.x[j1], in.x[j0]));
    __m128d dy = _mm_sub_pd(_mm_set_pd(in.y[i1], in.y[i0]), _mm_set_pd(in.y[j1], in.y[j0]));
    __m128d dz = _mm_sub_pd(_mm_set_pd(in.z[i1], in.z[i0]), _mm_set_pd(in.z[j1], in.z[j0]));
    const int rnd = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
    dx = _mm_sub_pd(dx, _mm_mul_pd(edge, _mm_round_pd(_mm_mul_pd(dx, invEdge), rnd)));
    dy = _mm_sub_pd(dy, _mm_mul_pd(edge, _mm_round_pd(_mm_mul_pd(dy, invEdge), rnd)));
    dz = _mm_sub_pd(dz, _mm_mul_pd(edge, _mm_round_pd(_mm_mul_pd(dz, invEdge), rnd)));

    const __m128d r2 = _mm_add_pd(_mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)),
                                  _mm_mul_pd(dz, dz));
    const __m128d r = _mm_sqrt_pd(r2);
    const __m128d within = _mm_cmplt_pd(r2, rc2V);

    const __m128d qq = _mm_mul_pd(_mm_mul_pd(qScaleV, _mm_set_pd(in.q[i1], in.q[i0])),
                                  _mm_set_pd(in.q[j1], in.q[j0]));
    const __m128d coulombE = _mm_mul_pd(
        qq, _mm_add_pd(_mm_sub_pd(_mm_div_pd(one, r), invRcV),
                       _mm_div_pd(_mm_sub_pd(r, rcV), rc2V)));
    const __m128d coulombF = _mm_mul_pd(qq, _mm_sub_pd(_mm_div_pd(one, r2), invRc2V));
    const __m128d coulombS = _mm_div_pd(coulombF, r);

    const __m128d inv2 = _mm_div_pd(s2V, r2);
    const __m128d inv6 = _mm_mul_pd(_mm_mul_pd(inv2, inv2), inv2);
    const __m128d inv12 = _mm_mul_pd(inv6, inv6);
    const __m128d ljE0 = _mm_mul_pd(eps4V, _mm_sub_pd(inv12, inv6));
    const __m128d ljFOverR =
        _mm_div_pd(_mm_mul_pd(eps24V, _mm_sub_pd(_mm_mul_pd(two, inv12), inv6)), r2);
    const __m128d ljE =
        _mm_add_pd(_mm_sub_pd(ljE0, ljErcV), _mm_mul_pd(ljFrcV, _mm_sub_pd(r, rcV)));
    const __m128d ljF = _mm_sub_pd(_mm_mul_pd(ljFOverR, r), ljFrcV);
    const __m128d ljS = _mm_div_pd(ljF, r);

    const __m128d oo = _mm_mul_pd(_mm_set_pd(in.oxy[i1], in.oxy[i0]),
                                  _mm_set_pd(in.oxy[j1], in.oxy[j0]));
    const __m128d coulombOn = _mm_and_pd(within, _mm_cmpneq_pd(qq, zero));
    const __m128d ljOn = _mm_and_pd(within, _mm_cmpgt_pd(oo, half));

    _mm_storeu_pd(out.dx + k, dx);
    _mm_storeu_pd(out.dy + k, dy);
    _mm_storeu_pd(out.dz + k, dz);
    _mm_storeu_pd(out.coulombE + k, coulombE);
    _mm_storeu_pd(out.coulombS + k, coulombS);
    _mm_storeu_pd(out.ljE + k, ljE);
    _mm_storeu_pd(out.ljS + k, ljS);
    const int withinBits = _mm_movemask_pd(within);
    const int coulombBits = _mm_movemask_pd(coulombOn);
    const int ljBits = _mm_movemask_pd(ljOn);
    for (int l = 0; l < 2; ++l) {
      out.withinCutoff[k + l] = static_cast<std::uint8_t>((withinBits >> l) & 1);
      out.coulombActive[k + l] = static_cast<std::uint8_t>((coulombBits >> l) & 1);
      out.ljActive[k + l] = static_cast<std::uint8_t>((ljBits >> l) & 1);
    }
  }
}

}  // namespace sfopt::simd::detail

#endif  // x86
