# Empty compiler generated dependencies file for table32_anderson.
# This may be replaced when dependencies are built.
