#include "noise/noisy_function.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/welford.hpp"

namespace {

using sfopt::noise::NoisyFunction;
using sfopt::noise::SampleKey;

NoisyFunction makeConstant(double value, double sigma0, double dt = 1.0) {
  NoisyFunction::Options o;
  o.sigma0 = sigma0;
  o.sampleDuration = dt;
  o.seed = 2024;
  return NoisyFunction(2, [value](std::span<const double>) { return value; }, o);
}

TEST(NoisyFunction, ExposesDimensionAndTrueValue) {
  auto f = makeConstant(7.0, 1.0);
  EXPECT_EQ(f.dimension(), 2u);
  const std::vector<double> x{0.0, 0.0};
  ASSERT_TRUE(f.trueValue(x).has_value());
  EXPECT_DOUBLE_EQ(*f.trueValue(x), 7.0);
  ASSERT_TRUE(f.noiseScale(x).has_value());
  EXPECT_DOUBLE_EQ(*f.noiseScale(x), 1.0);
}

TEST(NoisyFunction, SampleMeanConvergesToTrueValue) {
  auto f = makeConstant(10.0, 5.0);
  const std::vector<double> x{1.0, 2.0};
  sfopt::stats::Welford w;
  for (std::uint64_t i = 0; i < 50000; ++i) w.add(f.sample(x, {0, i}));
  EXPECT_NEAR(w.mean(), 10.0, 0.1);
}

TEST(NoisyFunction, PerSampleVarianceIsSigma0SquaredOverDt) {
  // With dt = 4, per-sample variance must be sigma0^2 / 4 so that the mean
  // over total time t has variance sigma0^2 / t (eq. 1.2).
  const double sigma0 = 6.0;
  const double dt = 4.0;
  auto f = makeConstant(0.0, sigma0, dt);
  const std::vector<double> x{0.0, 0.0};
  sfopt::stats::Welford w;
  for (std::uint64_t i = 0; i < 100000; ++i) w.add(f.sample(x, {1, i}));
  EXPECT_NEAR(w.variance(), sigma0 * sigma0 / dt, 0.3);
}

TEST(NoisyFunction, MeanOverTimeTHasVarianceSigma0SquaredOverT) {
  // Direct check of the decay law: form many independent "vertices", each
  // sampled n times; the empirical variance of the vertex means should be
  // sigma0^2 / (n * dt).
  const double sigma0 = 2.0;
  const double dt = 1.0;
  const int n = 16;
  auto f = makeConstant(0.0, sigma0, dt);
  const std::vector<double> x{0.0, 0.0};
  sfopt::stats::Welford acrossVertices;
  for (std::uint64_t v = 0; v < 4000; ++v) {
    sfopt::stats::Welford inner;
    for (std::uint64_t i = 0; i < n; ++i) inner.add(f.sample(x, {v, i}));
    acrossVertices.add(inner.mean());
  }
  const double expected = sigma0 * sigma0 / (n * dt);
  EXPECT_NEAR(acrossVertices.variance(), expected, expected * 0.15);
}

TEST(NoisyFunction, ReproducibleAcrossInstances) {
  auto f1 = makeConstant(0.0, 1.0);
  auto f2 = makeConstant(0.0, 1.0);
  const std::vector<double> x{0.5, -0.5};
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(f1.sample(x, {3, i}), f2.sample(x, {3, i}));
  }
}

TEST(NoisyFunction, DifferentStreamsDecorrelated) {
  auto f = makeConstant(0.0, 1.0);
  const std::vector<double> x{0.0, 0.0};
  // Correlation estimate between streams 1 and 2 over matched indices.
  sfopt::stats::Welford wa;
  sfopt::stats::Welford wb;
  double cross = 0.0;
  const int n = 20000;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(n); ++i) {
    const double a = f.sample(x, {1, i});
    const double b = f.sample(x, {2, i});
    wa.add(a);
    wb.add(b);
    cross += a * b;
  }
  const double cov = cross / n - wa.mean() * wb.mean();
  const double corr = cov / (wa.stddev() * wb.stddev());
  EXPECT_NEAR(corr, 0.0, 0.03);
}

TEST(NoisyFunction, ZeroNoiseIsExact) {
  auto f = makeConstant(3.25, 0.0);
  const std::vector<double> x{0.0, 0.0};
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(f.sample(x, {0, i}), 3.25);
  }
}

}  // namespace
