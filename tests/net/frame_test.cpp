#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/transport.hpp"

namespace {

using namespace sfopt::net;

std::vector<std::byte> bytesOf(const Frame& f) {
  std::vector<std::byte> wire;
  appendFrame(wire, f);
  return wire;
}

TEST(Frame, MessageRoundTripsThroughDecoder) {
  std::vector<std::byte> payload = {std::byte{0xDE}, std::byte{0xAD}, std::byte{0xBE}};
  const auto wire = bytesOf(makeMessageFrame(42, payload));

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::Message);
  EXPECT_EQ(f->tag, 42);
  EXPECT_EQ(f->payload, payload);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Frame, NegativeControlTagsSurvive) {
  const auto wire = bytesOf(makeMessageFrame(kTagWorkerLost, {}));
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->tag, kTagWorkerLost);
}

TEST(Frame, ByteByByteFeedReassembles) {
  std::vector<std::byte> wire;
  appendFrame(wire, makeHelloFrame());
  appendFrame(wire, makeMessageFrame(7, {std::byte{1}, std::byte{2}}));
  appendFrame(wire, makeHeartbeatFrame());

  FrameDecoder dec;
  std::vector<Frame> out;
  for (const std::byte b : wire) {
    dec.feed(&b, 1);
    while (auto f = dec.next()) out.push_back(std::move(*f));
  }
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].type, FrameType::Hello);
  EXPECT_EQ(out[1].type, FrameType::Message);
  EXPECT_EQ(out[1].tag, 7);
  EXPECT_EQ(out[2].type, FrameType::Heartbeat);
}

TEST(Frame, HelloRoundTrip) {
  const auto wire = bytesOf(makeHelloFrame());
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  const Hello h = parseHello(*f);
  EXPECT_EQ(h.magic, kProtocolMagic);
  EXPECT_EQ(h.version, kProtocolVersion);
}

TEST(Frame, WelcomeRoundTrip) {
  const auto wire = bytesOf(makeWelcomeFrame(3, 5));
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  const Welcome w = parseWelcome(*f);
  EXPECT_EQ(w.rank, 3);
  EXPECT_EQ(w.worldSize, 5);
}

TEST(Frame, BadMagicRejected) {
  Frame f = makeHelloFrame();
  f.payload[0] = std::byte{0x00};
  EXPECT_THROW((void)parseHello(f), ProtocolError);
}

TEST(Frame, VersionMismatchRejected) {
  Frame f = makeHelloFrame();
  f.payload[4] = std::byte{0x7F};  // LE low byte of the version field
  EXPECT_THROW((void)parseHello(f), ProtocolError);
}

TEST(Frame, WelcomeRejectsInvalidRank) {
  EXPECT_THROW((void)parseWelcome(makeWelcomeFrame(0, 5)), ProtocolError);
  EXPECT_THROW((void)parseWelcome(makeWelcomeFrame(1, 1)), ProtocolError);
}

TEST(Frame, OversizeLengthPrefixRejectedBeforeBuffering) {
  // A hostile length prefix must be refused outright, not allocated.
  FrameDecoder dec(/*maxFrameBytes=*/64);
  std::vector<std::byte> wire;
  const std::uint32_t huge = 1u << 30;
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<std::byte>((huge >> (8 * i)) & 0xFF));
  dec.feed(wire.data(), wire.size());
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(Frame, UnknownTypeRejected) {
  std::vector<std::byte> wire = {std::byte{1}, std::byte{0}, std::byte{0}, std::byte{0},
                                 std::byte{99}};
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(Frame, EmptyBodyRejected) {
  std::vector<std::byte> wire(4, std::byte{0});  // length prefix 0
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(Frame, TruncatedMessageHeaderRejected) {
  // Message frames need at least type + 4 tag bytes in the body.
  std::vector<std::byte> wire = {std::byte{2}, std::byte{0}, std::byte{0}, std::byte{0},
                                 std::byte{1}, std::byte{0}};
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(Frame, WireLayoutIsLittleEndianStable) {
  // Pin the v1 wire bytes of a small message so accidental layout changes
  // are caught: len=6 LE | type=1 | tag=0x0102 LE | payload {0xAB}.
  const auto wire = bytesOf(makeMessageFrame(0x0102, {std::byte{0xAB}}));
  const std::vector<std::byte> expected = {
      std::byte{6},    std::byte{0}, std::byte{0}, std::byte{0},  // length
      std::byte{1},                                               // type
      std::byte{0x02}, std::byte{0x01}, std::byte{0}, std::byte{0},  // tag LE
      std::byte{0xAB}};
  EXPECT_EQ(wire, expected);
}

}  // namespace
