# Empty dependencies file for fig37_pc_k1_vs_k2.
# This may be replaced when dependencies are built.
