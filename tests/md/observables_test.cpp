#include "md/observables.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "md/system.hpp"
#include "noise/rng.hpp"

namespace {

using namespace sfopt::md;

TEST(RdfAccumulator, ValidatesConstruction) {
  EXPECT_THROW(RdfAccumulator(0.0, 10), std::invalid_argument);
  EXPECT_THROW(RdfAccumulator(5.0, 0), std::invalid_argument);
}

TEST(RdfAccumulator, CurveWithoutFramesThrows) {
  auto sys = buildWaterLattice(8, 0.997, 298.0, tip4pPublished(), 3.0, 1);
  RdfAccumulator rdf(3.5, 10);
  EXPECT_THROW((void)rdf.curve(PairKind::OO, sys), std::logic_error);
}

TEST(RdfAccumulator, UniformGasApproachesUnity) {
  // Scatter "molecules" uniformly at random (overlaps allowed): the OO
  // g(r) must be ~1 across r, the defining normalization property.
  const int molecules = 125;
  const double density = 0.997;
  auto sys = buildWaterLattice(molecules, density, 298.0, tip4pPublished(), 5.0, 2);
  sfopt::noise::RngStream rng(99, 0);
  const double L = sys.box().edge();
  for (int m = 0; m < molecules; ++m) {
    const Vec3 c{rng.uniform(0.0, L), rng.uniform(0.0, L), rng.uniform(0.0, L)};
    const auto base = static_cast<std::size_t>(3 * m);
    const Vec3 offset1 = sys.positions[base + 1] - sys.positions[base];
    const Vec3 offset2 = sys.positions[base + 2] - sys.positions[base];
    sys.positions[base] = c;
    sys.positions[base + 1] = c + offset1;
    sys.positions[base + 2] = c + offset2;
  }
  RdfAccumulator rdf(5.0, 25);
  rdf.addFrame(sys);
  const auto curve = rdf.curve(PairKind::OO, sys);
  ASSERT_EQ(curve.g.size(), 25u);
  // Average of g over bins past the first few (tiny shells are noisy).
  double avg = 0.0;
  int used = 0;
  for (std::size_t b = 5; b < curve.g.size(); ++b) {
    avg += curve.g[b];
    ++used;
  }
  avg /= used;
  EXPECT_NEAR(avg, 1.0, 0.15);
}

TEST(RdfAccumulator, ExcludesIntramolecularPairs) {
  // A single frame of the equilibrium lattice: the OH histogram must have
  // no weight at the bond length if only intermolecular pairs are counted
  // (the lattice spacing keeps other molecules away).
  auto sys = buildWaterLattice(27, 0.997, 298.0, tip4pPublished(), 4.0, 3);
  RdfAccumulator rdf(1.2, 12);  // up to 1.2 A: only bonds could land here
  rdf.addFrame(sys);
  const auto curve = rdf.curve(PairKind::OH, sys);
  for (double g : curve.g) EXPECT_EQ(g, 0.0);
}

TEST(RdfAccumulator, FramesAccumulate) {
  auto sys = buildWaterLattice(8, 0.997, 298.0, tip4pPublished(), 3.0, 4);
  RdfAccumulator rdf(3.5, 10);
  rdf.addFrame(sys);
  rdf.addFrame(sys);
  EXPECT_EQ(rdf.frames(), 2);
  // Identical frames: curve equals the single-frame curve.
  RdfAccumulator one(3.5, 10);
  one.addFrame(sys);
  const auto c2 = rdf.curve(PairKind::OO, sys);
  const auto c1 = one.curve(PairKind::OO, sys);
  for (std::size_t b = 0; b < c1.g.size(); ++b) EXPECT_NEAR(c2.g[b], c1.g[b], 1e-12);
}

TEST(MsdAccumulator, BallisticMotionRecoversDiffusion) {
  // Give every molecule the same speed v in random directions; MSD grows
  // as v^2 t^2 — not linear — so instead test a synthetic random walk:
  // move each O by a fresh Gaussian step of variance 2 D dt per axis.
  auto sys = buildWaterLattice(64, 0.997, 298.0, tip4pPublished(), 5.0, 5);
  MsdAccumulator msd(sys);
  sfopt::noise::RngStream rng(7, 1);
  const double dt = 0.1;           // ps
  const double dTarget = 0.5;      // A^2/ps
  const double stepSigma = std::sqrt(2.0 * dTarget * dt);
  for (int frame = 1; frame <= 200; ++frame) {
    for (int m = 0; m < sys.molecules(); ++m) {
      auto& o = sys.positions[static_cast<std::size_t>(3 * m)];
      o += Vec3{stepSigma * rng.gaussian(), stepSigma * rng.gaussian(),
                stepSigma * rng.gaussian()};
    }
    msd.addFrame(sys, frame * dt);
  }
  // Slope/6 in A^2/ps -> cm^2/s via 1e-4.
  EXPECT_NEAR(msd.diffusionCm2PerS(), dTarget * 1e-4, dTarget * 1e-4 * 0.25);
}

TEST(MsdAccumulator, NeedsTwoFrames) {
  auto sys = buildWaterLattice(8, 0.997, 298.0, tip4pPublished(), 3.0, 6);
  MsdAccumulator msd(sys);
  EXPECT_THROW((void)msd.diffusionCm2PerS(), std::logic_error);
  msd.addFrame(sys, 0.1);
  EXPECT_THROW((void)msd.diffusionCm2PerS(), std::logic_error);
  msd.addFrame(sys, 0.2);
  EXPECT_NEAR(msd.diffusionCm2PerS(), 0.0, 1e-12);  // nothing moved
}

TEST(RdfResidual, ZeroForIdenticalCurves) {
  RdfCurve a;
  for (int i = 0; i < 20; ++i) {
    a.r.push_back(0.1 * i);
    a.g.push_back(1.0 + std::sin(i));
  }
  EXPECT_DOUBLE_EQ(rdfResidual(a, a, 0.0, 2.0), 0.0);
}

TEST(RdfResidual, ConstantOffsetRecovered) {
  RdfCurve a;
  RdfCurve b;
  for (int i = 0; i < 20; ++i) {
    a.r.push_back(0.1 * i);
    a.g.push_back(1.0);
    b.r.push_back(0.1 * i);
    b.g.push_back(1.5);
  }
  EXPECT_NEAR(rdfResidual(a, b, 0.0, 2.0), 0.5, 1e-12);
}

TEST(RdfResidual, RangeValidation) {
  RdfCurve a;
  a.r = {0.0, 1.0};
  a.g = {1.0, 1.0};
  EXPECT_THROW((void)rdfResidual(a, a, 2.0, 1.0), std::invalid_argument);
}

TEST(RdfResidual, WindowRestrictsComparison) {
  RdfCurve a;
  RdfCurve b;
  for (int i = 0; i < 20; ++i) {
    const double r = 0.1 * i;
    a.r.push_back(r);
    b.r.push_back(r);
    a.g.push_back(1.0);
    b.g.push_back(r < 1.0 ? 1.0 : 3.0);  // differ only beyond r = 1
  }
  EXPECT_NEAR(rdfResidual(a, b, 0.0, 0.9), 0.0, 1e-12);
  EXPECT_GT(rdfResidual(a, b, 1.1, 1.9), 1.0);
}

}  // namespace
