#include "core/crc32.hpp"

#include <array>

namespace sfopt::core {

namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;  // reflected 0x04C11DB7

constexpr std::array<std::uint32_t, 256> makeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = makeTable();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace sfopt::core
