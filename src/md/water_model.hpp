#pragma once

namespace sfopt::md {

// ---------------------------------------------------------------------------
// Unit system: length in Angstrom, mass in amu, time in picoseconds,
// energy in kcal/mol.  Conversions below reconcile force/acceleration units.
// ---------------------------------------------------------------------------

/// 1 kcal/mol expressed in amu * A^2 / ps^2.
inline constexpr double kKcalPerMolInMdUnits = 418.4;
/// Boltzmann constant in kcal/mol/K.
inline constexpr double kBoltzmann = 0.0019872041;
/// Coulomb constant in kcal * A / (mol * e^2).
inline constexpr double kCoulomb = 332.06371;
/// Atomic masses (amu).
inline constexpr double kMassO = 15.9994;
inline constexpr double kMassH = 1.008;
/// Pressure conversion: kcal/mol/A^3 -> atm.
inline constexpr double kKcalPerMolPerA3InAtm = 68568.4;

/// The three force-field parameters the paper optimizes for TIP4P-class
/// water models (Fig 3.19): the oxygen Lennard-Jones well depth and size,
/// and the hydrogen partial charge (oxygen carries -2 qH).
struct WaterParameters {
  double epsilon = 0.1550;  ///< kcal/mol (published TIP4P)
  double sigma = 3.1536;    ///< Angstrom (published TIP4P)
  double qH = 0.5200;       ///< |e| (published TIP4P)
};

/// Intramolecular flexibility constants (SPC/Fw-style): the MD engine uses
/// a flexible 3-site geometry so that rigid-body constraint algebra is not
/// needed; the substitution is documented in DESIGN.md.
struct IntramolecularConstants {
  double bondR0 = 1.012;      ///< A, O-H equilibrium length
  double bondK = 1059.162;    ///< kcal/mol/A^2 (harmonic, V = k (r - r0)^2)
  double angleTheta0 = 1.97662;  ///< rad (113.24 deg), H-O-H equilibrium
  double angleK = 75.90;      ///< kcal/mol/rad^2 (harmonic)
};

/// Published TIP4P reference parameters (Jorgensen et al. 1983), used as
/// the benchmark anchor throughout the application study.
[[nodiscard]] constexpr WaterParameters tip4pPublished() noexcept { return {}; }

}  // namespace sfopt::md
