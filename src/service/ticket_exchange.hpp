#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sampling_backend.hpp"
#include "mw/message_buffer.hpp"
#include "service/job.hpp"
#include "stats/welford.hpp"

namespace sfopt::service {

/// Thrown out of TicketExchange::submit/poll into the job's engine when
/// the daemon cancels or fails the job; the job thread's wrapper catches
/// it and records the terminal state.
class JobAborted : public std::runtime_error {
 public:
  JobAborted(const std::string& reason, bool cancelled)
      : std::runtime_error(reason), cancelled_(cancelled) {}
  [[nodiscard]] bool cancelled() const noexcept { return cancelled_; }

 private:
  bool cancelled_;
};

/// The multi-tenant heart of the service: a thread-safe mailbox between
/// the per-job engine threads (each driving its own EvalScheduler through
/// an ExchangeBackend) and the daemon thread that exclusively owns the one
/// MWDriver and the TCP transport.
///
/// Job threads submit() packed sampling tasks and poll() for their chunked
/// completions; the daemon drainPending()s tickets fairly — one shard per
/// runnable job per round-robin cycle — into the driver and deliver()s the
/// routed results back.  Tickets are globally unique and job-namespaced:
/// (jobId << kJobTraceShift) | sequence, with one exchange-wide sequence
/// counter, so the same ticket doubles as the shard's distributed trace id
/// and a multi-job capture groups cleanly per job.
///
/// abort() flags a job so its next submit/poll throws JobAborted (the
/// cancellation path); closeJob() must only be called after the job's
/// thread has exited — a blocked poll() holds the channel's condition
/// variable.
class TicketExchange {
 public:
  struct Completion {
    std::uint64_t ticket = 0;
    std::vector<stats::Welford> chunks;
  };

  struct PendingShard {
    std::uint64_t jobId = 0;
    std::uint64_t ticket = 0;
    mw::MessageBuffer input;
  };

  /// Daemon: open a channel before starting the job's thread.  `priority`
  /// (1..100) is the job's weighted-round-robin drain weight.
  void openJob(std::uint64_t jobId, int priority = 1);

  /// Daemon: tear down a channel.  Only safe once the job thread exited.
  void closeJob(std::uint64_t jobId);

  /// Job thread: enqueue one packed task; returns its ticket.  Throws
  /// JobAborted when the job was cancelled/failed or the channel is gone.
  [[nodiscard]] std::uint64_t submit(std::uint64_t jobId, mw::MessageBuffer input);

  /// Job thread: wait up to `timeoutSeconds` for completions (empty vector
  /// on timeout).  Throws JobAborted when the job was cancelled/failed.
  [[nodiscard]] std::vector<Completion> poll(std::uint64_t jobId, double timeoutSeconds);

  /// Daemon: route one completed shard back to its job.  Returns false
  /// (dropping the result) when the job is already closed — a late
  /// completion after cancel or failure.
  bool deliver(std::uint64_t jobId, std::uint64_t ticket, std::vector<stats::Welford> chunks);

  /// Daemon: make the job's next submit/poll throw JobAborted.
  void abort(std::uint64_t jobId, const std::string& reason, bool cancelled);

  /// Daemon: pop up to `maxShards` pending shards, weighted round-robin
  /// across jobs — each job yields up to its priority's worth of shards
  /// per cycle, and every job with pending work is visited every cycle,
  /// so high-priority jobs get proportionally more fleet without starving
  /// anyone.  All-default priorities degenerate to plain round-robin.
  [[nodiscard]] std::vector<PendingShard> drainPending(std::size_t maxShards);

  /// Shards submitted by job threads but not yet drained by the daemon.
  [[nodiscard]] std::size_t pendingShards() const;

  /// Fleet parallelism hint the daemon keeps fresh; ExchangeBackend
  /// reports it so each job's EvalScheduler sizes its outstanding-shard
  /// window to the shared fleet.
  void setParallelism(int p) noexcept { parallelism_.store(p < 1 ? 1 : p); }
  [[nodiscard]] int parallelism() const noexcept { return parallelism_.load(); }

 private:
  struct Channel {
    std::deque<PendingShard> pending;
    std::deque<Completion> done;
    std::condition_variable cv;
    int priority = 1;
    bool aborted = false;
    bool cancelled = false;
    std::string reason;
  };

  [[nodiscard]] Channel& channelOrThrow(std::uint64_t jobId);

  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::unique_ptr<Channel>> jobs_;
  std::uint64_t nextSequence_ = 1;
  std::size_t cursor_ = 0;  ///< round-robin position over jobs_ (by index)
  std::atomic<int> parallelism_{1};
};

/// The per-job core::SamplingBackend: marshals every batch into a
/// self-describing service task and moves it through the exchange.  Lives
/// on the job's engine thread; one instance per job.
class ExchangeBackend final : public core::SamplingBackend {
 public:
  ExchangeBackend(TicketExchange& exchange, std::uint64_t jobId, ObjectiveSpec spec)
      : exchange_(exchange), jobId_(jobId), spec_(std::move(spec)), async_(*this) {}

  [[nodiscard]] stats::Welford sampleBatch(const BatchRequest& request) override;
  [[nodiscard]] std::vector<stats::Welford> sampleBatches(
      std::span<const BatchRequest> requests) override;
  [[nodiscard]] core::AsyncSamplingBackend* async() override { return &async_; }

 private:
  class Async final : public core::AsyncSamplingBackend {
   public:
    explicit Async(ExchangeBackend& owner) : owner_(owner) {}
    [[nodiscard]] std::uint64_t submit(
        const core::SamplingBackend::BatchRequest& request) override;
    [[nodiscard]] std::vector<Completion> poll(double timeoutSeconds) override;
    [[nodiscard]] int parallelism() const override;

   private:
    ExchangeBackend& owner_;
  };

  TicketExchange& exchange_;
  std::uint64_t jobId_;
  ObjectiveSpec spec_;
  Async async_;
};

}  // namespace sfopt::service
