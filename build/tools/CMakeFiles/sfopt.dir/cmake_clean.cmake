file(REMOVE_RECURSE
  "CMakeFiles/sfopt.dir/main.cpp.o"
  "CMakeFiles/sfopt.dir/main.cpp.o.d"
  "sfopt"
  "sfopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
