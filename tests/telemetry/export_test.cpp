// Exporter tests: Prometheus text exposition, CSV summary, and the
// metric-to-structured-event dump used by `--telemetry-out`.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"

namespace {

using namespace sfopt::telemetry;

class CaptureSink final : public EventSink {
 public:
  void emit(const Event& e) override { events.push_back(e); }
  std::vector<Event> events;
};

MetricsRegistry& populated(MetricsRegistry& reg) {
  reg.counter("engine.iterations").add(40);
  reg.gauge("mw.workers").set(3.0);
  Histogram& h = reg.histogram("md.force_eval_seconds", {0.001, 0.01});
  h.observe(0.0005);
  h.observe(0.005);
  h.observe(0.5);
  return reg;
}

TEST(PrometheusExport, WritesSanitizedFamilies) {
  MetricsRegistry reg;
  std::ostringstream out;
  writePrometheusText(populated(reg), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE sfopt_engine_iterations counter"), std::string::npos);
  EXPECT_NE(text.find("sfopt_engine_iterations 40"), std::string::npos);
  EXPECT_NE(text.find("sfopt_mw_workers 3"), std::string::npos);
  // Histogram buckets are cumulative with a +Inf bucket and sum/count.
  EXPECT_NE(text.find("sfopt_md_force_eval_seconds_bucket{le=\"0.001\"} 1"), std::string::npos);
  EXPECT_NE(text.find("sfopt_md_force_eval_seconds_bucket{le=\"0.01\"} 2"), std::string::npos);
  EXPECT_NE(text.find("sfopt_md_force_eval_seconds_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("sfopt_md_force_eval_seconds_count 3"), std::string::npos);
}

TEST(CsvExport, OneRowPerMetricWithHeader) {
  MetricsRegistry reg;
  std::ostringstream out;
  writeCsvSummary(populated(reg), out);
  std::istringstream in(out.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "name,kind,count,sum,value");
  EXPECT_EQ(lines[1], "engine.iterations,counter,,,40");
  EXPECT_EQ(lines[2].rfind("md.force_eval_seconds,histogram,3,", 0), 0u);
  EXPECT_EQ(lines[3], "mw.workers,gauge,,,3");
}

TEST(MetricEvents, DumpsEveryMetricAsStructuredEvent) {
  MetricsRegistry reg;
  CaptureSink sink;
  const std::size_t n = writeMetricEvents(populated(reg), sink, 42.0);
  EXPECT_EQ(n, 3u);
  ASSERT_EQ(sink.events.size(), 3u);
  for (const Event& e : sink.events) {
    EXPECT_EQ(e.type, "metric");
    EXPECT_DOUBLE_EQ(e.time, 42.0);
  }
  // Snapshot order is by name: engine.iterations, md..., mw.workers.
  EXPECT_EQ(sink.events[0].name, "engine.iterations");
  EXPECT_EQ(sink.events[0].str("kind"), "counter");
  EXPECT_EQ(sink.events[0].num("value"), 40.0);
  EXPECT_EQ(sink.events[1].str("kind"), "histogram");
  EXPECT_EQ(sink.events[1].num("count"), 3.0);
  ASSERT_TRUE(sink.events[1].num("mean").has_value());
  EXPECT_NEAR(*sink.events[1].num("mean"), (0.0005 + 0.005 + 0.5) / 3.0, 1e-12);
  EXPECT_EQ(sink.events[2].str("kind"), "gauge");
  EXPECT_EQ(sink.events[2].num("value"), 3.0);
}

}  // namespace
