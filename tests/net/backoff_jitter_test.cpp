#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/tcp_transport.hpp"

namespace {

using sfopt::net::backoffDelaySeconds;

/// The un-jittered doubling schedule the jitter factor multiplies:
/// initial * 2^(attempt-1), capped at 5 seconds.
double base(int attempt, double initial) {
  return std::min(std::ldexp(initial, std::min(attempt - 1, 60)), 5.0);
}

TEST(BackoffJitter, DelayIsAPureFunctionOfItsArguments) {
  for (int attempt = 1; attempt <= 8; ++attempt) {
    for (std::uint64_t seed : {0ULL, 1ULL, 7ULL, 0xDEADBEEFULL}) {
      EXPECT_EQ(backoffDelaySeconds(attempt, 0.2, seed),
                backoffDelaySeconds(attempt, 0.2, seed));
    }
  }
}

TEST(BackoffJitter, GoldenSequenceIsPinned) {
  // Pinned against the splitmix64-derived schedule: a change to the jitter
  // function silently re-times every fleet restart, so it fails loudly
  // here instead.  Workers seed by rank; seed 0 is a worker's first dial.
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(1, 0.2, 0), 0.2766621616427285);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(2, 0.2, 0), 0.37261119881940402);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(3, 0.2, 0), 0.42114701727407822);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(4, 0.2, 0), 2.3534111650461256);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(1, 0.2, 1), 0.21331231503445622);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(2, 0.2, 1), 0.49831270290508045);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(3, 0.2, 1), 1.1768022028694369);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(1, 0.2, 2), 0.21823794683961589);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(2, 0.2, 2), 0.4996598735495299);
}

TEST(BackoffJitter, DelayStaysWithinTheJitterBand) {
  // factor in [0.5, 1.5) of the doubling base, for every attempt and seed.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    for (int attempt = 1; attempt <= 12; ++attempt) {
      const double b = base(attempt, 0.2);
      const double d = backoffDelaySeconds(attempt, 0.2, seed);
      EXPECT_GE(d, 0.5 * b) << "seed " << seed << " attempt " << attempt;
      EXPECT_LT(d, 1.5 * b) << "seed " << seed << " attempt " << attempt;
    }
  }
}

TEST(BackoffJitter, DifferentSeedsDesynchronizeTheFleet) {
  // The point of the jitter: two workers restarting together must not dial
  // on identical schedules.  Distinct seeds give distinct delays on the
  // same attempt (for at least most seed pairs — check a handful exactly).
  for (int attempt = 1; attempt <= 4; ++attempt) {
    EXPECT_NE(backoffDelaySeconds(attempt, 0.2, 1), backoffDelaySeconds(attempt, 0.2, 2));
    EXPECT_NE(backoffDelaySeconds(attempt, 0.2, 2), backoffDelaySeconds(attempt, 0.2, 3));
    EXPECT_NE(backoffDelaySeconds(attempt, 0.2, 0), backoffDelaySeconds(attempt, 0.2, 1));
  }
}

TEST(BackoffJitter, LateAttemptsAreCappedNotOverflowed) {
  // Attempt numbers far past the doubling range must neither overflow nor
  // exceed the 5 s cap's jitter band.
  for (int attempt : {30, 61, 1000}) {
    const double d = backoffDelaySeconds(attempt, 0.2, 7);
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_GE(d, 2.5);
    EXPECT_LT(d, 7.5);
  }
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(30, 0.2, 7), 4.5751570840221962);
}

}  // namespace
