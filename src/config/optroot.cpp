#include "config/optroot.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sfopt::config {

namespace fs = std::filesystem;

std::size_t OptRoot::runScriptCount() const noexcept {
  std::size_t n = 0;
  for (const SystemSpec& s : systems) n += s.phases.size();
  return n;
}

bool isReservedParDirectory(const std::string& name) noexcept {
  // Regex par[0-9]* : "par" followed by zero or more digits.
  if (name.size() < 3 || name.compare(0, 3, "par") != 0) return false;
  return std::all_of(name.begin() + 3, name.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; });
}

std::pair<std::vector<std::string>, std::vector<core::Point>> parseInputFile(
    const fs::path& file) {
  std::ifstream in(file);
  if (!in) throw std::runtime_error("parseInputFile: cannot open " + file.string());
  std::string line;
  // Header: parameter names.
  std::vector<std::string> names;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::string tok;
    while (ss >> tok) names.push_back(tok);
    if (!names.empty()) break;
  }
  if (names.empty()) {
    throw std::runtime_error("parseInputFile: missing parameter-name header in " +
                             file.string());
  }
  const std::size_t d = names.size();
  std::vector<core::Point> points;
  std::size_t lineNo = 1;
  while (std::getline(in, line)) {
    ++lineNo;
    std::istringstream ss(line);
    core::Point p;
    double v = 0.0;
    while (ss >> v) p.push_back(v);
    if (p.empty()) continue;  // blank line
    if (p.size() != d) {
      throw std::runtime_error("parseInputFile: line " + std::to_string(lineNo) + " of " +
                               file.string() + " has " + std::to_string(p.size()) +
                               " coordinates, expected " + std::to_string(d));
    }
    points.push_back(std::move(p));
  }
  if (points.size() < d + 1) {
    throw std::runtime_error("parseInputFile: " + file.string() + " provides " +
                             std::to_string(points.size()) +
                             " vertex rows; a d-dimensional simplex needs at least d+1 = " +
                             std::to_string(d + 1));
  }
  return {std::move(names), std::move(points)};
}

namespace {

double readScalarFile(const fs::path& file) {
  std::ifstream in(file);
  if (!in) throw std::runtime_error("cannot open " + file.string());
  double v = 0.0;
  if (!(in >> v)) {
    throw std::runtime_error("expected a single numerical value in " + file.string());
  }
  return v;
}

/// Collect the phases of a system directory: the root run.sh, then every
/// non-reserved subdirectory carrying a run.sh, recursively (the paper's
/// "additional phases ... via nested subdirectories").
void collectPhases(const fs::path& dir, const fs::path& rel, std::vector<std::string>& out) {
  if (fs::exists(dir / "run.sh")) {
    out.push_back(rel.empty() ? std::string(".") : rel.string());
  }
  std::vector<fs::path> subdirs;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (isReservedParDirectory(name)) continue;
    subdirs.push_back(entry.path());
  }
  std::sort(subdirs.begin(), subdirs.end());
  for (const auto& sub : subdirs) {
    collectPhases(sub, rel / sub.filename(), out);
  }
}

}  // namespace

OptRoot loadOptRoot(const fs::path& root) {
  if (!fs::is_directory(root)) {
    throw std::runtime_error("loadOptRoot: " + root.string() + " is not a directory");
  }
  OptRoot out;
  out.root = root;
  std::tie(out.parameterNames, out.initialPoints) = parseInputFile(root / "input");

  const fs::path systemsDir = root / "systems";
  if (!fs::is_directory(systemsDir)) {
    throw std::runtime_error("loadOptRoot: missing systems/ directory under " + root.string());
  }
  std::vector<fs::path> sysDirs;
  for (const auto& entry : fs::directory_iterator(systemsDir)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (isReservedParDirectory(name)) continue;
    sysDirs.push_back(entry.path());
  }
  std::sort(sysDirs.begin(), sysDirs.end());
  for (const auto& dir : sysDirs) {
    SystemSpec spec;
    spec.name = dir.filename().string();
    collectPhases(dir, fs::path{}, spec.phases);
    if (spec.phases.empty()) {
      throw std::runtime_error("loadOptRoot: system " + spec.name +
                               " has no run.sh (every system needs at least a first phase)");
    }
    out.systems.push_back(std::move(spec));
  }
  if (out.systems.empty()) {
    throw std::runtime_error("loadOptRoot: no systems found under " + systemsDir.string());
  }

  const fs::path propDir = root / "properties";
  if (fs::is_directory(propDir)) {
    std::vector<fs::path> valFiles;
    for (const auto& entry : fs::directory_iterator(propDir)) {
      if (entry.path().extension() == ".val") valFiles.push_back(entry.path());
    }
    std::sort(valFiles.begin(), valFiles.end());
    for (const auto& val : valFiles) {
      PropertySpec p;
      p.name = val.stem().string();
      p.target = readScalarFile(val);
      const fs::path wgt = val.parent_path() / (p.name + ".wgt");
      if (fs::exists(wgt)) p.weight = readScalarFile(wgt);
      p.hasScript = fs::exists(val.parent_path() / (p.name + ".sh"));
      out.properties.push_back(std::move(p));
    }
  }
  return out;
}

void writeOptRoot(const fs::path& root, const OptRoot& contents) {
  fs::create_directories(root / "systems");
  fs::create_directories(root / "properties");
  {
    std::ofstream in(root / "input");
    if (!in) throw std::runtime_error("writeOptRoot: cannot write input file");
    for (std::size_t i = 0; i < contents.parameterNames.size(); ++i) {
      in << (i == 0 ? "" : " ") << contents.parameterNames[i];
    }
    in << "\n";
    in.precision(12);
    for (const core::Point& p : contents.initialPoints) {
      for (std::size_t i = 0; i < p.size(); ++i) in << (i == 0 ? "" : " ") << p[i];
      in << "\n";
    }
  }
  for (const SystemSpec& sys : contents.systems) {
    const fs::path sysDir = root / "systems" / sys.name;
    for (const std::string& phase : sys.phases) {
      const fs::path dir = phase == "." ? sysDir : sysDir / phase;
      fs::create_directories(dir);
      std::ofstream run(dir / "run.sh");
      run << "#!/bin/sh\n# stub simulation phase written by sfopt::config::writeOptRoot\n";
    }
  }
  for (const PropertySpec& p : contents.properties) {
    {
      std::ofstream val(root / "properties" / (p.name + ".val"));
      val << p.target << "\n";
    }
    {
      std::ofstream wgt(root / "properties" / (p.name + ".wgt"));
      wgt << p.weight << "\n";
    }
    if (p.hasScript) {
      std::ofstream sh(root / "properties" / (p.name + ".sh"));
      sh << "#!/bin/sh\n# stub property calculation\n";
    }
  }
}

}  // namespace sfopt::config
