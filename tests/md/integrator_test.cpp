#include "md/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "md/forces.hpp"
#include "md/system.hpp"

namespace {

using namespace sfopt::md;

WaterSystem tinySystem(std::uint64_t seed = 5) {
  return buildWaterLattice(27, 0.997, 250.0, tip4pPublished(), 3.5, seed);
}

TEST(VelocityVerlet, RejectsBadOptions) {
  auto sys = tinySystem();
  EXPECT_THROW(VelocityVerlet(sys, {.dtPs = 0.0}), std::invalid_argument);
  EXPECT_THROW(VelocityVerlet(sys, {.dtPs = 0.001, .targetTemperatureK = -1.0}),
               std::invalid_argument);
}

TEST(VelocityVerlet, NveConservesEnergy) {
  auto sys = tinySystem();
  VelocityVerlet vv(sys, {.dtPs = 0.0002, .targetTemperatureK = 0.0});
  const double e0 = vv.lastForces().potential + sys.kineticEnergy();
  double maxDev = 0.0;
  for (int i = 0; i < 500; ++i) {
    const auto f = vv.step();
    maxDev = std::max(maxDev, std::abs(f.potential + sys.kineticEnergy() - e0));
  }
  // Per-molecule kinetic energy scale is ~0.9 kcal/mol; demand drift well
  // under 1% of the total energy scale.
  const double scale = std::abs(e0) + sys.kineticEnergy();
  EXPECT_LT(maxDev, 0.01 * scale);
}

TEST(VelocityVerlet, NveConservesMomentum) {
  auto sys = tinySystem();
  VelocityVerlet vv(sys, {.dtPs = 0.0002, .targetTemperatureK = 0.0});
  (void)vv.run(200);
  Vec3 p{};
  for (int i = 0; i < sys.sites(); ++i) {
    p += sys.massOf(i) * sys.velocities[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(norm(p), 0.0, 1e-6);
}

TEST(VelocityVerlet, SmallerTimestepConservesBetter) {
  auto measureDrift = [](double dt) {
    auto sys = tinySystem(9);
    VelocityVerlet vv(sys, {.dtPs = dt, .targetTemperatureK = 0.0});
    const double e0 = vv.lastForces().potential + sys.kineticEnergy();
    const int steps = static_cast<int>(0.05 / dt);  // same simulated span
    double maxDev = 0.0;
    for (int i = 0; i < steps; ++i) {
      const auto f = vv.step();
      maxDev = std::max(maxDev, std::abs(f.potential + sys.kineticEnergy() - e0));
    }
    return maxDev;
  };
  // Velocity Verlet error ~ dt^2: a 4x smaller step should cut the bound
  // dramatically; allow a generous factor.
  EXPECT_LT(measureDrift(0.0001), measureDrift(0.0004) * 0.5);
}

TEST(VelocityVerlet, BerendsenDrivesTemperatureToTarget) {
  auto sys = tinySystem();
  sys.rescaleTo(100.0);
  VelocityVerlet vv(sys,
                    {.dtPs = 0.0002, .targetTemperatureK = 300.0, .berendsenTauPs = 0.01});
  (void)vv.run(800);
  // Average over a window to smooth the instantaneous fluctuations.
  double tAvg = 0.0;
  for (int i = 0; i < 100; ++i) {
    (void)vv.step();
    tAvg += sys.temperature();
  }
  tAvg /= 100.0;
  EXPECT_NEAR(tAvg, 300.0, 60.0);
}

TEST(VelocityVerlet, RunReturnsConsistentForces) {
  auto sys = tinySystem();
  VelocityVerlet vv(sys, {.dtPs = 0.0002, .targetTemperatureK = 0.0});
  const auto f = vv.run(10);
  // lastForces() must describe the current positions.
  const auto recomputed = computeForces(sys);
  EXPECT_NEAR(f.potential, recomputed.potential, 1e-10);
}

}  // namespace
