#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "core/comparisons.hpp"
#include "stats/performance.hpp"
#include "stats/summary.hpp"
#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using core::PCConditionMask;
using core::PCOptions;
using core::runPointToPoint;
using core::runPointToPointWithMaxNoise;
using core::TerminationReason;

PCOptions pcOptions(double k = 1.0) {
  PCOptions o;
  o.k = k;
  o.common.termination.tolerance = 1e-3;
  o.common.termination.maxIterations = 300;
  o.common.termination.maxTime = 2e6;
  o.common.sampling.maxSamplesPerVertex = 200'000;
  return o;
}

TEST(PointToPoint, ConvergesOnNoiselessSphere) {
  auto obj = test::noisySphere(2, 0.0);
  const auto res = runPointToPoint(obj, test::simpleStart(2), pcOptions());
  EXPECT_EQ(res.reason, TerminationReason::Converged);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1e-2);
}

TEST(PointToPoint, ConvergesOnNoiselessRosenbrock) {
  auto obj = test::noisyRosenbrock(2, 0.0);
  PCOptions o = pcOptions();
  o.common.termination.maxIterations = 5000;
  const auto res = runPointToPoint(obj, test::simpleStart(2, -1.5, 0.5), o);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1e-2);
}

TEST(PointToPoint, ResamplesUnderNoise) {
  auto obj = test::noisySphere(2, 10.0);
  const auto res = runPointToPoint(obj, test::simpleStart(2), pcOptions());
  EXPECT_GT(res.counters.resampleRounds, 0);
}

TEST(PointToPoint, MaskNoneNeverResamples) {
  auto obj = test::noisySphere(2, 10.0);
  PCOptions o = pcOptions();
  o.mask = PCConditionMask::none();
  const auto res = runPointToPoint(obj, test::simpleStart(2), o);
  EXPECT_EQ(res.counters.resampleRounds, 0);
}

TEST(PointToPoint, ApproachesOptimumOnNoisySphere) {
  auto obj = test::noisySphere(2, 1.0);
  const auto res = runPointToPoint(obj, test::simpleStart(2), pcOptions());
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 0.5);
}

TEST(PointToPoint, KOneVsKTwoComparableAccuracy) {
  // Fig 3.7's finding: raising the confidence level from k=1 to k=2 makes
  // no substantial difference to the achieved minimum.  Whole-run sample
  // totals are NOT monotone in k (trajectories diverge), so the claim is
  // about accuracy, and the per-comparison monotonicity is covered by the
  // ConfidenceCompare tests below.
  std::vector<double> ratios;
  for (std::uint64_t s = 0; s < 7; ++s) {
    auto obj1 = test::noisySphere(2, 5.0, 21 + s);
    auto obj2 = test::noisySphere(2, 5.0, 21 + s);
    const auto start = test::simpleStart(2);
    const auto k1 = runPointToPoint(obj1, start, pcOptions(1.0));
    const auto k2 = runPointToPoint(obj2, start, pcOptions(2.0));
    ASSERT_TRUE(k1.bestTrue.has_value());
    ASSERT_TRUE(k2.bestTrue.has_value());
    ratios.push_back(stats::logRatio(*k2.bestTrue, *k1.bestTrue));
  }
  const stats::Summary s(ratios);
  EXPECT_NEAR(s.median(), 0.0, 2.0);
}

TEST(ConfidenceCompare, ResolvesSeparatedIntervals) {
  using sfopt::core::confidenceCompare;
  using sfopt::core::ConfidenceOutcome;
  EXPECT_EQ(confidenceCompare(0.0, 0.1, 1.0, 0.1, 1.0), ConfidenceOutcome::Less);
  EXPECT_EQ(confidenceCompare(1.0, 0.1, 0.0, 0.1, 1.0), ConfidenceOutcome::GreaterEq);
  EXPECT_EQ(confidenceCompare(0.0, 1.0, 0.5, 1.0, 1.0), ConfidenceOutcome::Unresolved);
}

TEST(ConfidenceCompare, LargerKOnlyMovesTowardUnresolved) {
  using sfopt::core::confidenceCompare;
  using sfopt::core::ConfidenceOutcome;
  sfopt::noise::RngStream rng(321, 0);
  for (int i = 0; i < 2000; ++i) {
    const double ma = rng.uniform(-5.0, 5.0);
    const double mb = rng.uniform(-5.0, 5.0);
    const double sa = rng.uniform(0.0, 2.0);
    const double sb = rng.uniform(0.0, 2.0);
    const auto at1 = confidenceCompare(ma, sa, mb, sb, 1.0);
    const auto at2 = confidenceCompare(ma, sa, mb, sb, 2.0);
    if (at1 == ConfidenceOutcome::Unresolved) {
      EXPECT_EQ(at2, ConfidenceOutcome::Unresolved);
    } else {
      // A resolution at k=2 must agree with the k=1 resolution.
      EXPECT_TRUE(at2 == at1 || at2 == ConfidenceOutcome::Unresolved);
    }
  }
}

TEST(ConfidenceCompare, ZeroSigmaIsPlainComparison) {
  using sfopt::core::confidenceCompare;
  using sfopt::core::ConfidenceOutcome;
  EXPECT_EQ(confidenceCompare(1.0, 0.0, 2.0, 0.0, 5.0), ConfidenceOutcome::Less);
  EXPECT_EQ(confidenceCompare(2.0, 0.0, 1.0, 0.0, 5.0), ConfidenceOutcome::GreaterEq);
  EXPECT_EQ(confidenceCompare(1.0, 0.0, 1.0, 0.0, 5.0), ConfidenceOutcome::GreaterEq);
}

TEST(PointToPoint, BeatsMaxNoiseOnNoisyRosenbrockMedian) {
  // Shape of Fig 3.5b: PC ties or outperforms MN in the median over starts.
  const double sigma0 = 100.0;
  std::vector<double> ratios;
  for (std::uint64_t s = 0; s < 9; ++s) {
    auto obj = test::noisyRosenbrock(3, sigma0, 7000 + s);
    const auto start = test::randomStart(3, -6.0, 3.0, 77, s);

    core::MaxNoiseOptions mn;
    mn.common.termination.tolerance = 1e-3;
    mn.common.termination.maxIterations = 300;
    mn.common.sampling.maxSamplesPerVertex = 200'000;
    const auto rm = core::runMaxNoise(obj, start, mn);

    const auto rp = runPointToPoint(obj, start, pcOptions());
    ASSERT_TRUE(rm.bestTrue.has_value());
    ASSERT_TRUE(rp.bestTrue.has_value());
    ratios.push_back(stats::logRatio(*rp.bestTrue, *rm.bestTrue));
  }
  stats::Summary s(ratios);
  EXPECT_LE(s.median(), 1.0);
}

TEST(PointToPoint, PCMNEngagesGate) {
  auto obj = test::noisySphere(2, 10.0);
  const auto res = runPointToPointWithMaxNoise(obj, test::simpleStart(2), pcOptions());
  EXPECT_GT(res.counters.gateWaitRounds, 0);
}

TEST(PointToPoint, PCMNConvergesOnNoisySphere) {
  auto obj = test::noisySphere(2, 1.0);
  const auto res = runPointToPointWithMaxNoise(obj, test::simpleStart(2), pcOptions());
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 0.5);
}

TEST(PointToPoint, PCMNTakesFewerStepsUnderTimeBudget) {
  // The paper's "fewer simplex steps" observation (178 vs 900) is made
  // under fixed-walltime termination: the PC+MN gate spends the budget on
  // sampling, so far fewer (but better-informed) moves happen.
  std::vector<double> ratios;
  for (std::uint64_t s = 0; s < 5; ++s) {
    auto obj1 = test::noisySphere(2, 20.0, 60 + s);
    auto obj2 = test::noisySphere(2, 20.0, 60 + s);
    const auto start = test::simpleStart(2);
    PCOptions o = pcOptions();
    o.common.termination.tolerance = 0.0;
    o.common.termination.maxTime = 30000.0;
    o.common.termination.maxIterations = 1'000'000;
    // Literal Algorithm 3/4 reading: trials start fresh, so the PC+MN gate
    // is what pays for vertex precision and visibly consumes the budget.
    o.matchTrialPrecision = false;
    const auto pc = runPointToPoint(obj1, start, o);
    const auto pcmn = runPointToPointWithMaxNoise(obj2, start, o);
    ratios.push_back(static_cast<double>(pcmn.iterations) /
                     static_cast<double>(std::max<std::int64_t>(pc.iterations, 1)));
  }
  EXPECT_LE(stats::Summary(ratios).median(), 1.0);
}

TEST(PointToPoint, ForcedResolutionAtTinyCap) {
  auto obj = test::noisySphere(2, 100.0);
  PCOptions o = pcOptions();
  o.common.sampling.maxSamplesPerVertex = 6;
  o.common.termination.maxIterations = 40;
  o.common.termination.tolerance = 0.0;
  const auto res = runPointToPoint(obj, test::simpleStart(2), o);
  EXPECT_EQ(res.iterations, 40);
  EXPECT_GT(res.counters.forcedResolutions, 0);
}

TEST(PointToPoint, CountersConsistent) {
  auto obj = test::noisySphere(2, 1.0);
  const auto res = runPointToPoint(obj, test::simpleStart(2), pcOptions());
  const auto& c = res.counters;
  EXPECT_EQ(c.reflections + c.expansions + c.contractions + c.collapses, res.iterations);
}

/// Every single-condition mask must still drive the simplex to the optimum
/// on a mildly noisy sphere (the section 3.3 ablations never break
/// convergence, they only trade accuracy for sampling effort).
class PCMaskConvergence : public ::testing::TestWithParam<int> {};

TEST_P(PCMaskConvergence, SingleConditionMaskConverges) {
  const int condition = GetParam();
  auto obj = test::noisySphere(2, 1.0, 500 + static_cast<std::uint64_t>(condition));
  PCOptions o = pcOptions();
  o.mask = PCConditionMask::only({condition});
  const auto res = runPointToPoint(obj, test::simpleStart(2), o);
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 1.0) << "mask=" << o.mask.label();
}

INSTANTIATE_TEST_SUITE_P(AllSevenConditions, PCMaskConvergence, ::testing::Range(1, 8));

/// k = 1 and k = 2 both converge across a seed sweep (Fig 3.7's finding of
/// "no substantial change").
class PCConfidenceLevel : public ::testing::TestWithParam<double> {};

TEST_P(PCConfidenceLevel, Converges) {
  auto obj = test::noisySphere(2, 1.0, 900);
  const auto res = runPointToPoint(obj, test::simpleStart(2), pcOptions(GetParam()));
  ASSERT_TRUE(res.bestTrue.has_value());
  EXPECT_LT(*res.bestTrue, 0.5);
}

INSTANTIATE_TEST_SUITE_P(KOneAndTwo, PCConfidenceLevel, ::testing::Values(1.0, 2.0));

}  // namespace
