// SpanTracer + JSONL wire-format tests.  All timing drives a ManualClock,
// so asserted durations are exact — no wall-clock flakiness.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/clock.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/span.hpp"

namespace {

using namespace sfopt::telemetry;

/// Captures emitted events in memory.
class CaptureSink final : public EventSink {
 public:
  void emit(const Event& e) override { events.push_back(e); }
  std::vector<Event> events;
};

TEST(SpanTracer, EmitsSpanWithExactDurationOnEnd) {
  CaptureSink sink;
  ManualClock clock;
  SpanTracer tracer(sink, clock);

  clock.set(10.0);
  const auto id = tracer.begin("engine.run");
  EXPECT_NE(id, 0u);
  EXPECT_EQ(tracer.openSpans(), 1u);

  clock.advance(2.5);
  tracer.end(id, {{"reason", "tolerance"}}, {{"iterations", 40.0}});
  EXPECT_EQ(tracer.openSpans(), 0u);

  ASSERT_EQ(sink.events.size(), 1u);
  const Event& e = sink.events[0];
  EXPECT_EQ(e.type, "span");
  EXPECT_EQ(e.name, "engine.run");
  EXPECT_DOUBLE_EQ(e.time, 10.0);
  EXPECT_DOUBLE_EQ(e.duration, 2.5);
  EXPECT_EQ(e.id, id);
  EXPECT_EQ(e.str("reason"), "tolerance");
  EXPECT_EQ(e.num("iterations"), 40.0);
}

TEST(SpanTracer, ParentChildNesting) {
  CaptureSink sink;
  ManualClock clock;
  SpanTracer tracer(sink, clock);

  const auto outer = tracer.begin("cli.optimize");
  const auto inner = tracer.begin("engine.run", outer);
  clock.advance(1.0);
  tracer.end(inner);
  tracer.end(outer);

  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].name, "engine.run");
  EXPECT_EQ(sink.events[0].parent, outer);
  EXPECT_EQ(sink.events[1].parent, 0u);
}

TEST(SpanTracer, EndOfUnknownIdIsIgnored) {
  CaptureSink sink;
  ManualClock clock;
  SpanTracer tracer(sink, clock);
  tracer.end(999);
  EXPECT_TRUE(sink.events.empty());
}

TEST(SpanTracer, EmitCompleteWritesRetroactiveSpan) {
  CaptureSink sink;
  ManualClock clock;
  SpanTracer tracer(sink, clock);
  clock.set(5.0);
  const auto id = tracer.emitComplete("engine.iteration", 3.0, 7, {{"move", "reflection"}},
                                      {{"samples", 120.0}});
  EXPECT_NE(id, 0u);
  ASSERT_EQ(sink.events.size(), 1u);
  const Event& e = sink.events[0];
  EXPECT_DOUBLE_EQ(e.time, 3.0);
  EXPECT_DOUBLE_EQ(e.duration, 2.0);
  EXPECT_EQ(e.parent, 7u);
  EXPECT_EQ(e.str("move"), "reflection");
}

TEST(ScopedSpan, EndsOnDestruction) {
  CaptureSink sink;
  ManualClock clock;
  SpanTracer tracer(sink, clock);
  {
    ScopedSpan span(tracer, "md.production");
    clock.advance(0.5);
  }
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.events[0].duration, 0.5);
}

TEST(JsonLine, RoundTripsThroughParser) {
  Event e;
  e.type = "span";
  e.name = "mw.batch";
  e.time = 1.25;
  e.duration = 0.5;
  e.id = 3;
  e.parent = 1;
  e.strFields = {{"phase", "production"}};
  e.numFields = {{"tasks", 12.0}};

  const std::string line = toJsonLine(e);
  const auto back = parseJsonLine(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, "span");
  EXPECT_EQ(back->name, "mw.batch");
  EXPECT_DOUBLE_EQ(back->time, 1.25);
  EXPECT_DOUBLE_EQ(back->duration, 0.5);
  EXPECT_EQ(back->id, 3u);
  EXPECT_EQ(back->parent, 1u);
  EXPECT_EQ(back->str("phase"), "production");
  EXPECT_EQ(back->num("tasks"), 12.0);
}

TEST(JsonLine, EscapesSpecialCharacters) {
  Event e;
  e.type = "event";
  e.name = "weird \"name\"\n";
  const auto back = parseJsonLine(toJsonLine(e));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, "weird \"name\"\n");
}

TEST(JsonLine, MalformedLinesParseToNullopt) {
  EXPECT_FALSE(parseJsonLine("").has_value());
  EXPECT_FALSE(parseJsonLine("not json").has_value());
  EXPECT_FALSE(parseJsonLine("{\"name\":\"x\"}").has_value());  // no type
  EXPECT_FALSE(parseJsonLine("{\"type\":\"span\",").has_value());
}

TEST(SpanTracer, TraceIdTagsEmittedSpans) {
  CaptureSink sink;
  ManualClock clock;
  SpanTracer tracer(sink, clock);

  const auto id = tracer.begin("shard.lifecycle", 0, /*trace=*/77);
  tracer.end(id);
  tracer.emitComplete("shard.folded", 0.0, id, {}, {}, /*trace=*/77);

  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].trace, 77u);
  EXPECT_EQ(sink.events[1].trace, 77u);
  // Trace ids survive the JSONL round trip.
  const auto back = parseJsonLine(toJsonLine(sink.events[0]));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace, 77u);
}

TEST(SpanTracer, SeedIdsRebasesTheCounter) {
  CaptureSink sink;
  ManualClock clock;
  SpanTracer tracer(sink, clock);
  const std::uint64_t base = (std::uint64_t{3} << 40) + 1;
  tracer.seedIds(base);
  const auto id = tracer.begin("worker.execute");
  EXPECT_EQ(id, base);
  tracer.end(id);
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].id, base);
}

TEST(JsonlSink, WritesOneLinePerEvent) {
  std::ostringstream out;
  JsonlSink sink(out);
  Event e;
  e.type = "metric";
  e.name = "engine.iterations";
  sink.emit(e);
  e.name = "mw.batches";
  sink.emit(e);
  EXPECT_EQ(sink.eventsWritten(), 2u);

  std::istringstream in(out.str());
  std::string line;
  int parsed = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(parseJsonLine(line).has_value());
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

TEST(JsonlSink, FlushIntervalZeroMakesEventsVisibleImmediately) {
  const auto path = std::filesystem::temp_directory_path() / "sfopt_flush_test.jsonl";
  {
    JsonlSink sink(path);
    Event e;
    e.type = "metric";
    e.name = "engine.iterations";

    // Default: buffered — a single short line stays in the stream buffer.
    sink.emit(e);
    EXPECT_EQ(readJsonlEvents(path).size(), 0u);
    sink.flush();
    EXPECT_EQ(readJsonlEvents(path).size(), 1u);

    // interval 0 = flush after every emit, while the sink is still open.
    sink.setFlushIntervalSeconds(0.0);
    sink.emit(e);
    sink.emit(e);
    EXPECT_EQ(readJsonlEvents(path).size(), 3u);
  }
  std::filesystem::remove(path);
}

}  // namespace
