#include "core/engine_base.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace sfopt::core::detail {

namespace {

/// The context's scheduler reports through the same spine as the engine;
/// splice the engine's telemetry pointer into the sampling options so the
/// caller does not have to set it twice.
SamplingContext::Options resolveSamplingOptions(const CommonOptions& common) {
  SamplingContext::Options opts = common.sampling;
  if (opts.telemetry == nullptr) opts.telemetry = common.telemetry;
  return opts;
}

}  // namespace

EngineBase::EngineBase(const noise::StochasticObjective& objective, const CommonOptions& common)
    : objective_(objective), common_(common), ctx_(objective, resolveSamplingOptions(common)) {
  if (common_.initialSamplesPerVertex < 1) {
    throw std::invalid_argument("EngineBase: initialSamplesPerVertex must be >= 1");
  }
  wallClock_ = common_.telemetry != nullptr ? &common_.telemetry->clock() : &fallbackClock_;
  lastStepWallMark_ = wallClock_->now();
  if (common_.telemetry != nullptr) {
    auto& reg = common_.telemetry->metrics();
    tel_.telemetry = common_.telemetry;
    tel_.iterations = &reg.counter("engine.iterations");
    tel_.moves[static_cast<int>(MoveKind::Reflection)] =
        &reg.counter("engine.moves.reflection");
    tel_.moves[static_cast<int>(MoveKind::Expansion)] = &reg.counter("engine.moves.expansion");
    tel_.moves[static_cast<int>(MoveKind::Contraction)] =
        &reg.counter("engine.moves.contraction");
    tel_.moves[static_cast<int>(MoveKind::Collapse)] = &reg.counter("engine.moves.collapse");
    tel_.gateWaitRounds = &reg.counter("engine.gate_wait_rounds");
    tel_.resampleRounds = &reg.counter("engine.resample_rounds");
    tel_.forcedResolutions = &reg.counter("engine.forced_resolutions");
    tel_.comparisons = &reg.counter("engine.pc.comparisons");
    tel_.stepWallSeconds = &reg.histogram(
        "engine.step_wall_seconds", telemetry::Histogram::exponentialBounds(1e-6, 10.0, 7));
    tel_.gateStallSeconds = &reg.histogram(
        "engine.gate_stall_seconds", telemetry::Histogram::exponentialBounds(0.1, 10.0, 7));
    tel_.roundsPerComparison = &reg.histogram("engine.pc.rounds_per_comparison",
                                              {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
    tel_.runSpanId = common_.telemetry->tracer().begin("engine.run");
  }
}

Simplex EngineBase::buildInitialSimplex(std::span<const Point> points) {
  const std::size_t d = objective_.dimension();
  if (points.size() != d + 1) {
    throw std::invalid_argument("buildInitialSimplex: need exactly dimension+1 points");
  }
  std::vector<std::unique_ptr<Vertex>> verts;
  verts.reserve(points.size());
  for (const Point& p : points) {
    verts.push_back(ctx_.createVertex(p, common_.initialSamplesPerVertex));
  }
  // All d+1 creations run concurrently on their workers: charge once.
  ctx_.chargeTime(common_.initialSamplesPerVertex);
  return Simplex(std::move(verts));
}

Simplex EngineBase::buildFromCheckpoint(const SimplexCheckpoint& cp) {
  const std::size_t d = objective_.dimension();
  if (cp.vertices.size() != d + 1) {
    throw std::invalid_argument("buildFromCheckpoint: checkpoint has wrong vertex count");
  }
  std::vector<std::unique_ptr<Vertex>> verts;
  verts.reserve(cp.vertices.size());
  for (const VertexCheckpoint& v : cp.vertices) {
    auto vertex = std::make_unique<Vertex>(v.x, v.id);
    vertex->absorb(stats::Welford::fromMoments(v.samples, v.mean, v.m2));
    verts.push_back(std::move(vertex));
  }
  ctx_.restoreAccounting(cp.clock, cp.totalSamples, cp.nextVertexId);
  counters_ = cp.counters;
  Simplex s(std::move(verts));
  for (int i = 0; i < cp.contractionLevel; ++i) s.noteContraction();
  for (int i = 0; i > cp.contractionLevel; --i) s.noteExpansion();
  return s;
}

SimplexCheckpoint EngineBase::snapshot(const Simplex& s, std::int64_t iteration) const {
  SimplexCheckpoint cp;
  cp.vertices.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const Vertex& v = s.at(i);
    cp.vertices.push_back(VertexCheckpoint{v.point(), v.id(), v.sampleCount(), v.mean(),
                                           v.accumulator().sumSquaredDeviations()});
  }
  cp.contractionLevel = s.contractionLevel();
  cp.iteration = iteration;
  cp.clock = ctx_.now();
  cp.totalSamples = ctx_.totalSamples();
  cp.nextVertexId = static_cast<std::uint64_t>(ctx_.verticesCreated()) +
                    ctx_.options().firstVertexId;
  cp.counters = counters_;
  return cp;
}

void EngineBase::maybeCheckpoint(const Simplex& s, std::int64_t iteration) {
  if (common_.checkpointEvery <= 0 || !common_.checkpointSink) return;
  if (iteration % common_.checkpointEvery != 0) return;
  common_.checkpointSink(snapshot(s, iteration));
}

std::unique_ptr<Vertex> EngineBase::createTrial(Point x, std::int64_t samples) {
  auto v = ctx_.createVertex(std::move(x), samples);
  ctx_.chargeTime(v->sampleCount());
  return v;
}

std::int64_t EngineBase::matchedTrialSamples(const Simplex& s) const {
  std::int64_t m = common_.initialSamplesPerVertex;
  for (std::size_t i = 0; i < s.size(); ++i) {
    m = std::max(m, s.at(i).sampleCount());
  }
  return m;
}

void EngineBase::collapse(Simplex& s, std::size_t minIndex) {
  const auto targets = s.collapseTargets(minIndex, common_.coefficients.shrink);
  for (const auto& [idx, p] : targets) {
    auto fresh = ctx_.createVertex(p, common_.initialSamplesPerVertex);
    (void)s.replace(idx, std::move(fresh));
  }
  // The d replacement vertices sample concurrently.
  ctx_.chargeTime(common_.initialSamplesPerVertex);
  s.noteCollapse();
  ++counters_.collapses;
}

std::optional<TerminationReason> EngineBase::shouldStop(const Simplex& s,
                                                        std::int64_t iteration) const {
  const TerminationCriteria& t = common_.termination;
  if (t.tolerance > 0.0 && s.valueSpread() <= t.tolerance) {
    return TerminationReason::Converged;
  }
  if (ctx_.now() >= t.maxTime) return TerminationReason::TimeLimit;
  if (iteration >= t.maxIterations) return TerminationReason::IterationLimit;
  if (t.maxSamples > 0 && ctx_.totalSamples() >= t.maxSamples) {
    return TerminationReason::SampleLimit;
  }
  return std::nullopt;
}

bool EngineBase::timeExhausted() const {
  const TerminationCriteria& t = common_.termination;
  return ctx_.now() >= t.maxTime ||
         (t.maxSamples > 0 && ctx_.totalSamples() >= t.maxSamples);
}

void EngineBase::maybeRecord(const Simplex& s, MoveKind move, std::int64_t iteration) {
  // Per-step accounting runs even when tracing is off: telemetry and the
  // trace share the same wall-time and resample-round deltas.
  const double wallNow = wallClock_->now();
  const double stepWall = wallNow - lastStepWallMark_;
  lastStepWallMark_ = wallNow;
  const std::int64_t roundsNow = counters_.gateWaitRounds + counters_.resampleRounds;
  const std::int64_t stepRounds = roundsNow - lastResampleMark_;
  lastResampleMark_ = roundsNow;

  if (tel_.telemetry != nullptr) {
    tel_.iterations->add(1);
    tel_.moves[static_cast<int>(move)]->add(1);
    tel_.stepWallSeconds->observe(stepWall);
    tel_.telemetry->tracer().emitComplete(
        "engine.iteration", wallNow - stepWall, tel_.runSpanId,
        {{"move", toString(move)}},
        {{"iteration", static_cast<double>(iteration)},
         {"virtual_time", ctx_.now()},
         {"total_samples", static_cast<double>(ctx_.totalSamples())},
         {"resample_rounds", static_cast<double>(stepRounds)}});
  }

  if (!common_.recordTrace) return;
  const auto o = s.ordering();
  StepRecord r;
  r.iteration = iteration;
  r.time = ctx_.now();
  r.bestEstimate = s.at(o.min).mean();
  r.bestTrue = ctx_.trueValue(s.at(o.min));
  r.diameter = s.diameter();
  r.contractionLevel = s.contractionLevel();
  r.move = move;
  r.totalSamples = ctx_.totalSamples();
  r.wallSeconds = stepWall;
  r.resampleRounds = stepRounds;
  trace_.record(std::move(r));
}

OptimizationResult EngineBase::finish(const Simplex& s, std::int64_t iterations,
                                      TerminationReason reason) {
  const auto o = s.ordering();
  OptimizationResult res;
  res.best = s.at(o.min).point();
  res.bestEstimate = s.at(o.min).mean();
  res.bestTrue = ctx_.trueValue(s.at(o.min));
  res.iterations = iterations;
  res.elapsedTime = ctx_.now();
  res.totalSamples = ctx_.totalSamples();
  res.reason = reason;
  res.counters = counters_;
  res.trace = std::move(trace_);
  if (tel_.telemetry != nullptr) {
    auto& reg = tel_.telemetry->metrics();
    reg.gauge("engine.total_samples").set(static_cast<double>(res.totalSamples));
    reg.gauge("engine.virtual_seconds").set(res.elapsedTime);
    tel_.telemetry->tracer().end(
        tel_.runSpanId, {{"reason", std::string(toString(reason))}},
        {{"iterations", static_cast<double>(iterations)},
         {"total_samples", static_cast<double>(res.totalSamples)},
         {"virtual_seconds", res.elapsedTime}});
  }
  return res;
}

namespace {

/// Shared scaffolding of both wait gates: repeatedly co-sample all active
/// vertices in growing blocks until `satisfied()` returns true, the time
/// budget dies, or every vertex is capped.
template <typename SatisfiedFn>
void gateWaitLoop(EngineBase& eng, Simplex& s, std::span<Vertex* const> activeTrials,
                  const ResamplePolicy& policy, SatisfiedFn satisfied) {
  std::int64_t block = std::max<std::int64_t>(policy.initialBlock, 1);
  while (!satisfied()) {
    if (eng.timeExhausted()) return;
    bool anyRoom = false;
    std::vector<SamplingContext::RefineRequest> reqs;
    reqs.reserve(s.size() + activeTrials.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      Vertex& v = s.at(i);
      if (!eng.ctx().atSampleCap(v)) anyRoom = true;
      reqs.push_back({&v, block});
    }
    for (Vertex* t : activeTrials) {
      if (!eng.ctx().atSampleCap(*t)) anyRoom = true;
      reqs.push_back({t, block});
    }
    if (!anyRoom) {
      ++eng.counters().forcedResolutions;
      if (eng.tel().telemetry != nullptr) eng.tel().forcedResolutions->add(1);
      return;
    }
    const std::int64_t nextBlock = std::min<std::int64_t>(
        policy.maxBlock, static_cast<std::int64_t>(std::ceil(static_cast<double>(block) *
                                                             std::max(policy.growth, 1.0))));
    // Prefetch hint: if the gate stays closed, the next round co-samples
    // the same vertices at the grown block.  A speculating pipeline starts
    // that work now; everyone else ignores the hint.
    std::vector<SamplingContext::RefineRequest> hint = reqs;
    for (auto& h : hint) h.samples = nextBlock;
    eng.ctx().coSample(reqs, hint);
    ++eng.counters().gateWaitRounds;
    block = nextBlock;
  }
}

/// Instrumented wrapper: the wait-gate stall (virtual seconds spent
/// sampling before the gate opened) is the paper's headline cost driver
/// for MN, so every gate pass records its stall and round count.
template <typename SatisfiedFn>
void gateWait(EngineBase& eng, Simplex& s, std::span<Vertex* const> activeTrials,
              const ResamplePolicy& policy, SatisfiedFn satisfied) {
  EngineTelemetry& tel = eng.tel();
  if (tel.telemetry == nullptr) {
    gateWaitLoop(eng, s, activeTrials, policy, satisfied);
    return;
  }
  const double stallStart = eng.ctx().now();
  const std::int64_t rounds0 = eng.counters().gateWaitRounds;
  gateWaitLoop(eng, s, activeTrials, policy, satisfied);
  tel.gateStallSeconds->observe(eng.ctx().now() - stallStart);
  tel.gateWaitRounds->add(eng.counters().gateWaitRounds - rounds0);
}

}  // namespace

void maxNoiseGateWait(EngineBase& eng, Simplex& s, std::span<Vertex* const> activeTrials,
                      double k, const ResamplePolicy& policy) {
  gateWait(eng, s, activeTrials, policy, [&] {
    const double maxSig = s.maxSigma(eng.ctx());
    const double internal = s.internalVariance();
    return maxSig * maxSig <= k * internal;
  });
}

void andersonGateWait(EngineBase& eng, Simplex& s, std::span<Vertex* const> activeTrials,
                      double k1, double k2, const ResamplePolicy& policy) {
  gateWait(eng, s, activeTrials, policy, [&] {
    const double level = static_cast<double>(s.contractionLevel());
    const double cutoff = k1 * std::pow(2.0, -level * (1.0 + k2));
    for (std::size_t i = 0; i < s.size(); ++i) {
      const double sig = eng.ctx().sigma(s.at(i));
      if (!(sig * sig < cutoff)) return false;
    }
    return true;
  });
}

}  // namespace sfopt::core::detail
