# Empty compiler generated dependencies file for mw_scaleup.
# This may be replaced when dependencies are built.
