file(REMOVE_RECURSE
  "libsfopt_noise.a"
)
