// Extension bench (paper section 5.2, future work): particle swarm
// optimization on noisy multimodal landscapes, with and without the
// noise-aware (point-to-point style) best-update duels, optionally
// polished by a PC simplex ("PSO finds the basin, simplex drills down" —
// the hybrid the paper sketches).

#include <cmath>
#include <cstdio>

#include "common/harness.hpp"
#include "core/initial_simplex.hpp"
#include "core/pso.hpp"
#include "stats/summary.hpp"
#include "testfunctions/functions.hpp"

using namespace sfopt;

namespace {

noise::NoisyFunction noisyRastrigin(std::size_t dim, double sigma0, std::uint64_t seed) {
  noise::NoisyFunction::Options o;
  o.sigma0 = sigma0;
  o.seed = seed;
  return noise::NoisyFunction(
      dim, [](std::span<const double> x) { return testfunctions::rastrigin(x); }, o);
}

double runPso(const noise::StochasticObjective& obj, bool confidence, std::uint64_t seed) {
  core::PsoOptions o;
  o.particles = 24;
  o.confidenceBestUpdates = confidence;
  o.resample.maxRoundsPerComparison = 8;
  o.termination.tolerance = 1e-4;
  o.termination.maxIterations = 250;
  o.termination.maxSamples = 300'000;
  o.seed = seed;
  core::OptimizationResult res = core::runParticleSwarm(obj, o);
  return std::fabs(res.bestTrue.value_or(res.bestEstimate));
}

double runPsoThenSimplex(const noise::StochasticObjective& obj, std::uint64_t seed) {
  core::PsoOptions o;
  o.particles = 24;
  o.resample.maxRoundsPerComparison = 8;
  o.termination.tolerance = 1e-3;
  o.termination.maxIterations = 120;
  o.termination.maxSamples = 150'000;
  o.seed = seed;
  const auto coarse = core::runParticleSwarm(obj, o);

  core::PCOptions pc;
  pc.common.termination.tolerance = 1e-4;
  pc.common.termination.maxIterations = 200;
  pc.common.termination.maxSamples = 150'000;
  pc.common.sampling.firstVertexId = 1u << 24;  // disjoint noise streams
  const auto fine =
      core::runPointToPoint(obj, core::axisSimplexPoints(coarse.best, 0.3), pc);
  return std::fabs(fine.bestTrue.value_or(fine.bestEstimate));
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 30;
  bench::printHeader(
      "Extension (paper sec 5.2) - PSO / PSO+confidence / PSO->PC hybrid on noisy Rastrigin");

  for (double sigma0 : {1.0, 10.0}) {
    std::vector<double> plain;
    std::vector<double> conf;
    std::vector<double> hybrid;
    for (int t = 0; t < trials; ++t) {
      const auto s = static_cast<std::uint64_t>(t);
      auto obj = noisyRastrigin(2, sigma0, 4400 + s);
      plain.push_back(runPso(obj, false, 10 + s));
      conf.push_back(runPso(obj, true, 10 + s));
      hybrid.push_back(runPsoThenSimplex(obj, 10 + s));
    }
    bench::printSubHeader("noise sigma0 = " + std::to_string(static_cast<int>(sigma0)));
    const stats::Summary sp(plain);
    const stats::Summary sc(conf);
    const stats::Summary sh(hybrid);
    std::printf("  %-22s median=%8.4f  p25=%8.4f  p75=%8.4f\n", "PSO (plain bests)",
                sp.median(), sp.percentile(25.0), sp.percentile(75.0));
    std::printf("  %-22s median=%8.4f  p25=%8.4f  p75=%8.4f\n", "PSO (confidence bests)",
                sc.median(), sc.percentile(25.0), sc.percentile(75.0));
    std::printf("  %-22s median=%8.4f  p25=%8.4f  p75=%8.4f\n", "PSO -> PC simplex",
                sh.median(), sh.percentile(25.0), sh.percentile(75.0));
  }
  std::printf(
      "\nReading: confidence duels protect the swarm's bests from lucky noise\n"
      "draws; handing the basin to a PC simplex adds the strong local\n"
      "convergence PSO lacks - the hybrid direction the paper recommends.\n");
  return 0;
}
