file(REMOVE_RECURSE
  "libsfopt_core.a"
)
