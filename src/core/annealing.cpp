#include "core/annealing.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/sampling_context.hpp"
#include "core/trace.hpp"

namespace sfopt::core {

OptimizationResult runSimulatedAnnealing(const noise::StochasticObjective& objective,
                                         const Point& start, const AnnealingOptions& options) {
  if (start.size() != objective.dimension()) {
    throw std::invalid_argument("runSimulatedAnnealing: start dimension mismatch");
  }
  if (!(options.initialTemperature > 0.0)) {
    throw std::invalid_argument("runSimulatedAnnealing: initialTemperature must be positive");
  }
  if (!(options.coolingRate > 0.0 && options.coolingRate < 1.0)) {
    throw std::invalid_argument("runSimulatedAnnealing: coolingRate must be in (0, 1)");
  }
  if (options.sweepSize < 1 || options.samplesPerEvaluation < 1) {
    throw std::invalid_argument("runSimulatedAnnealing: bad sweep/sample counts");
  }

  SamplingContext ctx(objective, options.sampling);
  noise::RngStream rng(options.seed, 0x5AFE);
  const TerminationCriteria& term = options.termination;

  auto current = ctx.createVertex(start, options.samplesPerEvaluation);
  ctx.chargeTime(options.samplesPerEvaluation);
  // Best-so-far: a clone of the walker state (point + accumulated
  // estimate) at the moment it became best.  Cloning — rather than
  // re-sampling — keeps the tracked best monotone.
  auto cloneOf = [](const Vertex& v) {
    auto c = std::make_unique<Vertex>(v.point(), v.id());
    c->absorb(v.accumulator());
    return c;
  };
  auto best = cloneOf(*current);

  OptimizationTrace trace;
  MoveCounters counters;
  double temperature = options.initialTemperature;
  std::int64_t sweep = 0;
  TerminationReason reason = TerminationReason::IterationLimit;

  for (;;) {
    if (term.tolerance > 0.0 && temperature <= term.tolerance) {
      reason = TerminationReason::Converged;
      break;
    }
    if (ctx.now() >= term.maxTime) {
      reason = TerminationReason::TimeLimit;
      break;
    }
    if (sweep >= term.maxIterations) {
      reason = TerminationReason::IterationLimit;
      break;
    }
    if (term.maxSamples > 0 && ctx.totalSamples() >= term.maxSamples) {
      reason = TerminationReason::SampleLimit;
      break;
    }

    const double scale =
        options.stepScale * std::sqrt(temperature / options.initialTemperature);
    for (int k = 0; k < options.sweepSize; ++k) {
      Point proposal = current->point();
      for (double& c : proposal) c += scale * rng.gaussian();
      auto candidate = ctx.createVertex(std::move(proposal), options.samplesPerEvaluation);
      ctx.chargeTime(options.samplesPerEvaluation);
      const double delta = candidate->mean() - current->mean();
      const bool accept = delta < 0.0 || rng.uniform() < std::exp(-delta / temperature);
      if (accept) {
        current = std::move(candidate);
        ++counters.reflections;  // counts accepted moves
        if (current->mean() < best->mean()) {
          best = cloneOf(*current);
        }
      }
    }
    temperature *= options.coolingRate;
    ++sweep;

    if (options.recordTrace) {
      StepRecord r;
      r.iteration = sweep;
      r.time = ctx.now();
      r.bestEstimate = best->mean();
      r.bestTrue = ctx.trueValue(*best);
      r.totalSamples = ctx.totalSamples();
      trace.record(std::move(r));
    }
  }

  OptimizationResult out;
  out.best = best->point();
  out.bestEstimate = best->mean();
  out.bestTrue = ctx.trueValue(*best);
  out.iterations = sweep;
  out.elapsedTime = ctx.now();
  out.totalSamples = ctx.totalSamples();
  out.reason = reason;
  out.counters = counters;
  out.trace = std::move(trace);
  return out;
}

}  // namespace sfopt::core
