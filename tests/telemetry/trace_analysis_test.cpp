#include "telemetry/trace_analysis.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using namespace sfopt::telemetry;

Event span(std::string name, std::uint64_t id, std::uint64_t parent,
           std::uint64_t trace, double start, double duration) {
  Event e;
  e.type = "span";
  e.name = std::move(name);
  e.id = id;
  e.parent = parent;
  e.trace = trace;
  e.time = start;
  e.duration = duration;
  return e;
}

Event clockEvent(int rank, double offset, double rtt) {
  Event e;
  e.type = "clock";
  e.name = "fleet.clock";
  e.numFields = {{"rank", static_cast<double>(rank)},
                 {"offset_seconds", offset},
                 {"rtt_seconds", rtt}};
  return e;
}

constexpr std::uint64_t kWorkerIdBase = (1ULL << 40);

/// One healthy shard: lifecycle root -> queue + remote -> worker.execute
/// (on a worker clock 5 s ahead of the master) -> folded terminal.
std::vector<Event> healthyTrace(std::uint64_t trace = 1) {
  std::vector<Event> events;
  Event root = span("shard.lifecycle", 10 * trace, 0, trace, 1.0, 2.0);
  root.strFields = {{"outcome", "ok"}};
  events.push_back(root);
  events.push_back(span("shard.queue", 10 * trace + 1, 10 * trace, trace, 1.0, 0.1));
  Event remote = span("shard.remote", 10 * trace + 2, 10 * trace, trace, 1.1, 1.5);
  remote.strFields = {{"outcome", "ok"}};
  remote.numFields = {{"rank", 1.0}};
  events.push_back(remote);
  Event exec = span("worker.execute", kWorkerIdBase + trace, 10 * trace + 2, trace,
                    /*start on worker clock=*/6.3, 1.0);
  exec.strFields = {{"outcome", "ok"}};
  exec.numFields = {{"rank", 1.0}};
  events.push_back(exec);
  events.push_back(span("shard.folded", 10 * trace + 3, 10 * trace, trace, 2.7, 0.0));
  return events;
}

TEST(TraceAnalysis, ReconstructsHealthySpanTree) {
  auto events = healthyTrace();
  events.push_back(clockEvent(1, 5.0, 0.01));

  const TraceReport report = analyzeTraceEvents(events);
  for (const auto& p : report.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.traces, 1u);
  EXPECT_EQ(report.dispatched, 1u);
  EXPECT_EQ(report.folded, 1u);
  EXPECT_EQ(report.requeues, 0u);
  EXPECT_TRUE(report.workerSpansSeen);

  EXPECT_DOUBLE_EQ(report.queueSeconds, 0.1);
  EXPECT_DOUBLE_EQ(report.executeSeconds, 1.0);
  EXPECT_DOUBLE_EQ(report.wireSeconds, 0.5);  // remote 1.5 minus execute 1.0
  // Fold delay: remote ends at 1.1 + 1.5 = 2.6, terminal at 2.7.
  EXPECT_NEAR(report.foldSeconds, 0.1, 1e-12);

  ASSERT_EQ(report.workers.size(), 1u);
  EXPECT_EQ(report.workers[0].rank, 1);
  EXPECT_EQ(report.workers[0].tasks, 1u);
  EXPECT_TRUE(report.workers[0].offsetKnown);
  EXPECT_DOUBLE_EQ(report.workers[0].clockOffsetSeconds, 5.0);
}

TEST(TraceAnalysis, MedianOffsetCorrectsWorkerClock) {
  auto events = healthyTrace();
  // Three samples; the median (5.0) must win over the outlier.
  events.push_back(clockEvent(1, 4.9, 0.01));
  events.push_back(clockEvent(1, 5.0, 0.01));
  events.push_back(clockEvent(1, 25.0, 0.50));

  const TraceReport report = analyzeTraceEvents(events);
  ASSERT_EQ(report.workers.size(), 1u);
  EXPECT_DOUBLE_EQ(report.workers[0].clockOffsetSeconds, 5.0);
  // worker.execute starts at 6.3 on the worker clock -> 1.3 on the
  // master's; the run wall span must reflect corrected times (master
  // spans run 1.0..3.0 here, so the corrected execute stays inside).
  EXPECT_NEAR(report.wallSeconds, 2.0, 1e-12);
}

TEST(TraceAnalysis, OrphanWorkerSpanIsFlagged) {
  auto events = healthyTrace();
  events.push_back(span("worker.execute", kWorkerIdBase + 99, /*parent=*/4242,
                        /*trace=*/1, 5.0, 0.1));
  const TraceReport report = analyzeTraceEvents(events);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.problems.empty());
  EXPECT_NE(report.problems[0].find("orphan worker.execute"), std::string::npos);
}

TEST(TraceAnalysis, MissingRootAndTerminalAreFlagged) {
  std::vector<Event> events;
  Event remote = span("shard.remote", 12, 10, /*trace=*/3, 1.0, 1.0);
  remote.strFields = {{"outcome", "ok"}};
  events.push_back(remote);

  const TraceReport report = analyzeTraceEvents(events);
  EXPECT_FALSE(report.ok());
  bool missingRoot = false;
  bool missingTerminal = false;
  for (const auto& p : report.problems) {
    missingRoot |= p.find("missing shard.lifecycle root") != std::string::npos;
    missingTerminal |= p.find("no terminal marker") != std::string::npos;
  }
  EXPECT_TRUE(missingRoot);
  EXPECT_TRUE(missingTerminal);
}

TEST(TraceAnalysis, RequeuedDispatchCountsAndStaysComplete) {
  auto events = healthyTrace();
  // A first, failed dispatch attempt of the same shard: remote ended with
  // outcome=lost and a second queue wait before the retry.
  Event lost = span("shard.remote", 15, 10, /*trace=*/1, 0.5, 0.4);
  lost.strFields = {{"outcome", "lost"}};
  lost.numFields = {{"rank", 2.0}};
  events.push_back(lost);
  events.push_back(span("shard.queue", 16, 10, 1, 0.5, 0.2));

  const TraceReport report = analyzeTraceEvents(events);
  for (const auto& p : report.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.dispatched, 2u);
  EXPECT_EQ(report.requeues, 1u);
  EXPECT_EQ(report.folded, 1u);
}

TEST(TraceAnalysis, AbandonedSpeculativeTaskIsLegitimatelyTerminalLess) {
  std::vector<Event> events;
  Event root = span("shard.lifecycle", 50, 0, /*trace=*/7, 1.0, 0.5);
  root.strFields = {{"outcome", "abandoned"}};
  events.push_back(root);

  const TraceReport report = analyzeTraceEvents(events);
  for (const auto& p : report.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.abandoned, 1u);
  EXPECT_EQ(report.dispatched, 0u);
}

TEST(TraceAnalysis, DiscardedStaleCompletionIsTerminal) {
  std::vector<Event> events;
  Event root = span("shard.lifecycle", 10, 0, /*trace=*/2, 1.0, 1.0);
  root.strFields = {{"outcome", "ok"}};
  events.push_back(root);
  events.push_back(span("shard.queue", 11, 10, 2, 1.0, 0.1));
  Event remote = span("shard.remote", 12, 10, 2, 1.1, 0.8);
  remote.strFields = {{"outcome", "ok"}};
  remote.numFields = {{"rank", 1.0}};
  events.push_back(remote);
  Event disc = span("shard.discarded", 13, 0, 2, 2.0, 0.0);
  disc.strFields = {{"reason", "stale"}};
  events.push_back(disc);

  const TraceReport report = analyzeTraceEvents(events);
  for (const auto& p : report.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.discarded, 1u);
  EXPECT_EQ(report.folded, 0u);
}

/// One healthy shard whose ids live in a job's trace namespace, the way
/// the multi-tenant service mints tickets: (jobId << 40) | sequence.
std::vector<Event> namespacedTrace(std::uint64_t job, std::uint64_t seq) {
  const std::uint64_t trace = (job << kTraceNamespaceShift) | seq;
  std::vector<Event> events;
  Event root = span("shard.lifecycle", trace * 16, 0, trace, 1.0, 1.0);
  root.strFields = {{"outcome", "ok"}};
  events.push_back(root);
  events.push_back(span("shard.queue", trace * 16 + 1, trace * 16, trace, 1.0, 0.1));
  Event remote = span("shard.remote", trace * 16 + 2, trace * 16, trace, 1.1, 0.8);
  remote.strFields = {{"outcome", "ok"}};
  remote.numFields = {{"rank", 1.0}};
  events.push_back(remote);
  events.push_back(span("shard.folded", trace * 16 + 3, trace * 16, trace, 2.0, 0.0));
  return events;
}

Event jobRootSpan(std::uint64_t job, double start, double duration,
                  const std::string& outcome) {
  Event e = span("service.job", job, 0, job << kTraceNamespaceShift, start, duration);
  e.strFields = {{"outcome", outcome}};
  e.numFields = {{"job", static_cast<double>(job)}};
  return e;
}

TEST(TraceAnalysis, MultiJobCaptureGroupsByTraceNamespace) {
  std::vector<Event> events;
  for (const auto& e : namespacedTrace(1, 1)) events.push_back(e);
  for (const auto& e : namespacedTrace(1, 2)) events.push_back(e);
  for (const auto& e : namespacedTrace(2, 3)) events.push_back(e);
  events.push_back(jobRootSpan(1, 0.5, 3.0, "done"));
  events.push_back(jobRootSpan(2, 0.7, 2.0, "cancelled"));

  const TraceReport report = analyzeTraceEvents(events);
  for (const auto& p : report.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(report.multiJob());
  ASSERT_EQ(report.namespaces.size(), 2u);
  EXPECT_EQ(report.namespaces[0].ns, 1u);
  EXPECT_EQ(report.namespaces[0].traces, 2u);
  EXPECT_EQ(report.namespaces[0].folded, 2u);
  EXPECT_TRUE(report.namespaces[0].jobSpanSeen);
  EXPECT_EQ(report.namespaces[0].jobOutcome, "done");
  EXPECT_DOUBLE_EQ(report.namespaces[0].jobSeconds, 3.0);
  EXPECT_EQ(report.namespaces[1].ns, 2u);
  EXPECT_EQ(report.namespaces[1].traces, 1u);
  EXPECT_EQ(report.namespaces[1].jobOutcome, "cancelled");
  // The job roots are lifecycle markers, not shard traces.
  EXPECT_EQ(report.traces, 3u);
}

TEST(TraceAnalysis, LegacySingleTenantCaptureIsNotMultiJob) {
  const TraceReport report = analyzeTraceEvents(healthyTrace());
  EXPECT_FALSE(report.multiJob());
  ASSERT_EQ(report.namespaces.size(), 1u);
  EXPECT_EQ(report.namespaces[0].ns, 0u);
}

TEST(TraceAnalysis, NamespaceProblemsAreAttributedToTheirJob) {
  // Job 1 is healthy, job 2's shard never got a terminal span.
  std::vector<Event> events;
  for (const auto& e : namespacedTrace(1, 1)) events.push_back(e);
  const std::uint64_t badTrace = (2ULL << kTraceNamespaceShift) | 2;
  Event root = span("shard.lifecycle", badTrace * 16, 0, badTrace, 1.0, 1.0);
  root.strFields = {{"outcome", "ok"}};
  events.push_back(root);

  const TraceReport report = analyzeTraceEvents(events);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.namespaces.size(), 2u);
  EXPECT_EQ(report.namespaces[0].problems, 0u);
  EXPECT_GE(report.namespaces[1].problems, 1u);
}

TEST(TraceAnalysis, StragglerListIsSortedAndBounded) {
  std::vector<Event> events;
  for (std::uint64_t t = 1; t <= 4; ++t) {
    for (Event e : healthyTrace(t)) {
      if (e.name == "shard.lifecycle") e.duration = static_cast<double>(t);
      events.push_back(std::move(e));
    }
  }
  const TraceReport report = analyzeTraceEvents(events, /*topStragglers=*/2);
  ASSERT_EQ(report.stragglers.size(), 2u);
  EXPECT_EQ(report.stragglers[0].traceId, 4u);
  EXPECT_EQ(report.stragglers[1].traceId, 3u);
  EXPECT_DOUBLE_EQ(report.stragglers[0].totalSeconds, 4.0);
}

}  // namespace
