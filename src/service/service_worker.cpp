#include "service/service_worker.hpp"

#include <algorithm>
#include <utility>

#include "mw/sampling_service.hpp"

namespace sfopt::service {

ServiceWorker::ServiceWorker(net::Transport& comm, mw::Rank rank, int maxCachedJobs)
    : mw::MWWorker(comm, rank), maxCachedJobs_(std::max(maxCachedJobs, 1)) {}

mw::VertexServer& ServiceWorker::serverFor(std::uint64_t jobId, const ObjectiveSpec& spec) {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->jobId != jobId) continue;
    cache_.splice(cache_.begin(), cache_, it);
    return *cache_.front().server;
  }
  ++cacheMisses_;
  JobServer entry;
  entry.jobId = jobId;
  entry.objective = std::make_unique<noise::NoisyFunction>(spec.makeObjective());
  entry.server = std::make_unique<mw::VertexServer>(*entry.objective,
                                                    static_cast<int>(spec.clients));
  cache_.push_front(std::move(entry));
  while (cache_.size() > static_cast<std::size_t>(maxCachedJobs_)) cache_.pop_back();
  return *cache_.front().server;
}

void ServiceWorker::executeTask(mw::MessageBuffer& in, mw::MessageBuffer& out) {
  const std::uint64_t jobId = in.unpackUint64();
  const ObjectiveSpec spec = ObjectiveSpec::unpack(in);
  mw::VertexServer& server = serverFor(jobId, spec);
  mw::SamplingTask task;
  task.unpackInput(in);
  const core::SamplingBackend::BatchRequest req{task.x(), task.vertexId(),
                                                task.startIndex(), task.count()};
  task.setChunks(server.runBatchChunks(req));
  task.packResult(out);
}

}  // namespace sfopt::service
