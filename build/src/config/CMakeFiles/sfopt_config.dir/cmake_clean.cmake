file(REMOVE_RECURSE
  "CMakeFiles/sfopt_config.dir/optroot.cpp.o"
  "CMakeFiles/sfopt_config.dir/optroot.cpp.o.d"
  "libsfopt_config.a"
  "libsfopt_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfopt_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
