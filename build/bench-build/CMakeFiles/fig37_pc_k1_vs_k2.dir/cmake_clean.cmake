file(REMOVE_RECURSE
  "../bench/fig37_pc_k1_vs_k2"
  "../bench/fig37_pc_k1_vs_k2.pdb"
  "CMakeFiles/fig37_pc_k1_vs_k2.dir/fig37_pc_k1_vs_k2.cpp.o"
  "CMakeFiles/fig37_pc_k1_vs_k2.dir/fig37_pc_k1_vs_k2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig37_pc_k1_vs_k2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
