#include "md/cell_list.hpp"

#include <algorithm>
#include <stdexcept>

namespace sfopt::md {

int CellList::cellsPerDimension(const PeriodicBox& box, double interactionRadius) {
  if (!(interactionRadius > 0.0)) return 0;
  return static_cast<int>(box.edge() / interactionRadius);
}

bool CellList::admits(const PeriodicBox& box, double interactionRadius) {
  return cellsPerDimension(box, interactionRadius) >= 3;
}

CellList::CellList(const PeriodicBox& box, double interactionRadius)
    : box_(box), cellsPerDim_(cellsPerDimension(box, interactionRadius)) {
  if (cellsPerDim_ < 3) {
    throw std::invalid_argument(
        "CellList: box does not admit 3 cells per dimension at this radius");
  }
  cellEdge_ = box_.edge() / cellsPerDim_;
  cellStart_.assign(static_cast<std::size_t>(cells()) + 1, 0);
}

int CellList::cellOf(const Vec3& p) const noexcept {
  const Vec3 w = box_.wrap(p);
  const double inv = 1.0 / cellEdge_;
  // wrap() yields [0, edge); clamp guards the p == edge rounding corner.
  const int cx = std::min(static_cast<int>(w.x * inv), cellsPerDim_ - 1);
  const int cy = std::min(static_cast<int>(w.y * inv), cellsPerDim_ - 1);
  const int cz = std::min(static_cast<int>(w.z * inv), cellsPerDim_ - 1);
  return cellIndex(cx, cy, cz);
}

void CellList::bin(const std::vector<Vec3>& positions) {
  const auto n = positions.size();
  cellOfSiteScratch_.resize(n);
  std::vector<int>& cellOfSite = cellOfSiteScratch_;
  cellStart_.assign(static_cast<std::size_t>(cells()) + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int c = cellOf(positions[i]);
    cellOfSite[i] = c;
    ++cellStart_[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t c = 1; c < cellStart_.size(); ++c) {
    cellStart_[c] += cellStart_[c - 1];
  }
  // Counting sort in site order keeps each cell's slots ascending.
  siteOfSlot_.assign(n, 0);
  wrappedOfSlot_.resize(n);
  std::vector<int> next(cellStart_.begin(), cellStart_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto slot =
        static_cast<std::size_t>(next[static_cast<std::size_t>(cellOfSite[i])]++);
    siteOfSlot_[slot] = static_cast<int>(i);
    wrappedOfSlot_[slot] = box_.wrap(positions[i]);
  }
}

double CellList::averageOccupancy() const noexcept {
  return cells() > 0 ? static_cast<double>(sites()) / cells() : 0.0;
}

int CellList::maxOccupancy() const noexcept {
  int best = 0;
  for (std::size_t c = 0; c + 1 < cellStart_.size(); ++c) {
    best = std::max(best, cellStart_[c + 1] - cellStart_[c]);
  }
  return best;
}

}  // namespace sfopt::md
