#pragma once

#include <cstddef>
#include <vector>

#include "core/point.hpp"
#include "noise/rng.hpp"

namespace sfopt::core {

/// Generate the d+1 points of an initial simplex with every coordinate of
/// every vertex uniform in [lo, hi) — the protocol both test campaigns in
/// the paper use (U[-6,3] for the 3-d Rosenbrock study, U[-5,5) for the 4-d
/// comparisons).
[[nodiscard]] std::vector<Point> randomSimplexPoints(std::size_t dimension, double lo, double hi,
                                                     noise::RngStream& rng);

/// Axis-aligned initial simplex: vertex 0 at `origin`, vertex i at
/// origin + scale * e_i.  Deterministic; used by tests and quickstarts.
[[nodiscard]] std::vector<Point> axisSimplexPoints(const Point& origin, double scale);

}  // namespace sfopt::core
