#include "common/harness.hpp"

#include <cmath>
#include <cstdio>

#include "core/initial_simplex.hpp"
#include "stats/summary.hpp"
#include "testfunctions/functions.hpp"

namespace sfopt::bench {

void printHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void printSubHeader(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

stats::PerformanceMeasures measure(const core::OptimizationResult& result,
                                   std::span<const double> solution) {
  stats::PerformanceMeasures m;
  m.iterations = result.iterations;
  m.functionError = result.bestTrue ? std::fabs(*result.bestTrue) : 0.0;
  m.distance = stats::euclideanDistance(result.best, solution);
  return m;
}

noise::NoisyFunction noisyRosenbrock(std::size_t dim, double sigma0, std::uint64_t seed) {
  noise::NoisyFunction::Options o;
  o.sigma0 = sigma0;
  o.sampleDuration = 1.0;
  o.seed = seed;
  return noise::NoisyFunction(
      dim, [](std::span<const double> x) { return testfunctions::rosenbrock(x); }, o);
}

noise::NoisyFunction noisyPowell(double sigma0, std::uint64_t seed) {
  noise::NoisyFunction::Options o;
  o.sigma0 = sigma0;
  o.sampleDuration = 1.0;
  o.seed = seed;
  return noise::NoisyFunction(
      4, [](std::span<const double> x) { return testfunctions::powell(x); }, o);
}

stats::Histogram comparePair(
    const PairwiseCampaign& campaign,
    const std::function<noise::NoisyFunction(std::uint64_t seed)>& makeObjective,
    const RunFn& runA, const RunFn& runB) {
  stats::Histogram hist(-8.0, 8.0, 16);
  for (int t = 0; t < campaign.trials; ++t) {
    noise::RngStream startRng(campaign.startSeed, static_cast<std::uint64_t>(t));
    const auto start = core::randomSimplexPoints(campaign.dimension, campaign.boxLo,
                                                 campaign.boxHi, startRng);
    const auto objective =
        makeObjective(campaign.noiseSeed + static_cast<std::uint64_t>(t));
    const auto resA = runA(objective, start);
    const auto resB = runB(objective, start);
    const double a = resA.bestTrue ? std::fabs(*resA.bestTrue) : resA.bestEstimate;
    const double b = resB.bestTrue ? std::fabs(*resB.bestTrue) : resB.bestEstimate;
    hist.add(stats::logRatio(a, b, 8.0));
  }
  return hist;
}

void printComparison(const std::string& label, const stats::Histogram& hist) {
  std::printf("\n%s  (count vs log10 ratio; negative = numerator wins)\n", label.c_str());
  std::printf("%s", hist.asciiRender(40).c_str());
  const auto b = hist.balanceAroundZero();
  std::printf("  numerator better: %.0f%%   tie: %.0f%%   denominator better: %.0f%%\n",
              100.0 * b.below, 100.0 * b.near, 100.0 * b.above);
}

core::TerminationCriteria campaignTermination() {
  core::TerminationCriteria t;
  t.tolerance = 1e-6;
  t.maxTime = 50'000.0;     // virtual seconds (paper: late-stage updates ~1e4 s)
  t.maxIterations = 400;
  t.maxSamples = 200'000;   // compute guard per run
  return t;
}

void applyCampaignBudget(core::CommonOptions& common) {
  common.termination = campaignTermination();
  common.sampling.maxSamplesPerVertex = 20'000;
}

core::DetOptions campaignDet() {
  core::DetOptions o;
  applyCampaignBudget(o.common);
  return o;
}

core::MaxNoiseOptions campaignMn() {
  core::MaxNoiseOptions o;
  o.matchTrialPrecision = false;  // literal Algorithm 2
  applyCampaignBudget(o.common);
  return o;
}

core::PCOptions campaignPc() {
  core::PCOptions o;  // PC defaults already carry the sigma-floor/cap tuning
  applyCampaignBudget(o.common);
  return o;
}

core::PCOptions campaignPcMn() {
  core::PCOptions o = campaignPc();
  o.maxNoiseGate = true;
  return o;
}

void applyTableBudget(core::CommonOptions& common) {
  common.termination.tolerance = 1e-3;
  common.termination.maxTime = 1'000'000.0;
  common.termination.maxIterations = 2'000;
  common.termination.maxSamples = 3'000'000;
  common.sampling.maxSamplesPerVertex = 200'000;
}

}  // namespace sfopt::bench
