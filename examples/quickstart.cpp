// Quickstart: minimize a noisy objective with the point-to-point
// comparison (PC) simplex in ~30 lines.
//
// The objective is the classic 2-d Rosenbrock banana with Gaussian
// sampling noise whose variance decays as sigma0^2 / t with accumulated
// sampling time t — the paper's eq. 1.1/1.2 noise model.

#include <cstdio>

#include "core/algorithms.hpp"
#include "core/initial_simplex.hpp"
#include "noise/noisy_function.hpp"
#include "testfunctions/functions.hpp"

int main() {
  using namespace sfopt;

  // 1. A stochastic objective: deterministic f + 1/t sampling noise.
  noise::NoisyFunction::Options noiseOpts;
  noiseOpts.sigma0 = 2.0;  // one second of sampling has stddev 2
  noise::NoisyFunction objective(
      2, [](std::span<const double> x) { return testfunctions::rosenbrock(x); }, noiseOpts);

  // 2. An initial simplex: 3 points for a 2-d problem.
  const auto start = core::axisSimplexPoints(core::Point{-1.5, 2.0}, 0.8);

  // 3. Optimize with PC: every simplex decision is made at a 1-sigma
  //    confidence separation, resampling vertices until it can be.
  core::PCOptions options;
  options.common.termination.tolerance = 1e-3;
  options.common.termination.maxIterations = 500;
  options.common.termination.maxSamples = 1'000'000;
  const auto result = core::runPointToPoint(objective, start, options);

  std::printf("stopped:    %s after %lld simplex steps\n", toString(result.reason).data(),
              static_cast<long long>(result.iterations));
  std::printf("best point: %s\n", core::toString(result.best, 4).c_str());
  std::printf("estimate:   %.6f   (true value there: %.6f)\n", result.bestEstimate,
              result.bestTrue.value_or(0.0));
  std::printf("effort:     %lld objective samples, %.0f simulated seconds\n",
              static_cast<long long>(result.totalSamples), result.elapsedTime);
  std::printf("moves:      %lld reflections, %lld expansions, %lld contractions, %lld collapses\n",
              static_cast<long long>(result.counters.reflections),
              static_cast<long long>(result.counters.expansions),
              static_cast<long long>(result.counters.contractions),
              static_cast<long long>(result.counters.collapses));
  return 0;
}
