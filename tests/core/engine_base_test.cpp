// Direct tests of the shared engine machinery (detail::EngineBase): the
// initial simplex build, trial-precision matching, collapse semantics and
// the wait gates' edge cases.

#include "core/engine_base.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.hpp"

namespace {

using namespace sfopt;
using core::CommonOptions;
using core::detail::EngineBase;

TEST(EngineBase, ValidatesInitialSamples) {
  auto obj = test::noisySphere(2, 1.0);
  CommonOptions c;
  c.initialSamplesPerVertex = 0;
  EXPECT_THROW(EngineBase(obj, c), std::invalid_argument);
}

TEST(EngineBase, BuildInitialSimplexChecksPointCount) {
  auto obj = test::noisySphere(3, 1.0);
  CommonOptions c;
  EngineBase eng(obj, c);
  const auto tooFew = test::simpleStart(2);  // 3 points, need 4
  EXPECT_THROW((void)eng.buildInitialSimplex(tooFew), std::invalid_argument);
}

TEST(EngineBase, BuildChargesCreationOnce) {
  auto obj = test::noisySphere(2, 1.0);
  CommonOptions c;
  c.initialSamplesPerVertex = 10;
  EngineBase eng(obj, c);
  auto s = eng.buildInitialSimplex(test::simpleStart(2));
  // Three vertices sampled concurrently: the clock advances by 10 dt, not 30.
  EXPECT_DOUBLE_EQ(eng.ctx().now(), 10.0);
  EXPECT_EQ(eng.ctx().totalSamples(), 30);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.at(i).sampleCount(), 10);
  }
}

TEST(EngineBase, MatchedTrialSamplesTracksHeaviestVertex) {
  auto obj = test::noisySphere(2, 1.0);
  CommonOptions c;
  c.initialSamplesPerVertex = 4;
  EngineBase eng(obj, c);
  auto s = eng.buildInitialSimplex(test::simpleStart(2));
  EXPECT_EQ(eng.matchedTrialSamples(s), 4);
  (void)eng.ctx().refine(s.at(1), 96);  // 100 total
  EXPECT_EQ(eng.matchedTrialSamples(s), 100);
}

TEST(EngineBase, CreateTrialChargesItsOwnTime) {
  auto obj = test::noisySphere(2, 1.0);
  CommonOptions c;
  EngineBase eng(obj, c);
  const double before = eng.ctx().now();
  auto v = eng.createTrial({0.5, 0.5}, 7);
  EXPECT_EQ(v->sampleCount(), 7);
  EXPECT_DOUBLE_EQ(eng.ctx().now() - before, 7.0);
}

TEST(EngineBase, CollapseReplacesAllButMinWithFreshVertices) {
  auto obj = test::noisySphere(2, 1.0);
  CommonOptions c;
  c.initialSamplesPerVertex = 3;
  EngineBase eng(obj, c);
  auto s = eng.buildInitialSimplex(test::simpleStart(2));
  const auto o = s.ordering();
  const auto minId = s.at(o.min).id();
  const auto minCount = s.at(o.min).sampleCount();
  (void)eng.ctx().refine(s.at(o.min), 50);  // make min clearly established
  eng.collapse(s, o.min);
  EXPECT_EQ(s.at(o.min).id(), minId);  // the min vertex survives untouched
  EXPECT_EQ(s.at(o.min).sampleCount(), minCount + 50);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i == o.min) continue;
    EXPECT_EQ(s.at(i).sampleCount(), 3);  // fresh vertices, fresh estimates
    EXPECT_NE(s.at(i).id(), minId);
  }
  EXPECT_EQ(s.contractionLevel(), 2);  // l += d
  EXPECT_EQ(eng.counters().collapses, 1);
}

TEST(EngineBase, MaxNoiseGateNoOpWhenNoiseless) {
  auto obj = test::noisySphere(2, 0.0);
  CommonOptions c;
  EngineBase eng(obj, c);
  auto s = eng.buildInitialSimplex(test::simpleStart(2));
  const auto samplesBefore = eng.ctx().totalSamples();
  core::ResamplePolicy policy;
  core::detail::maxNoiseGateWait(eng, s, {}, 2.0, policy);
  EXPECT_EQ(eng.ctx().totalSamples(), samplesBefore);
  EXPECT_EQ(eng.counters().gateWaitRounds, 0);
}

TEST(EngineBase, MaxNoiseGateStopsAtSampleCap) {
  // A vanishing k makes the gate condition effectively unsatisfiable;
  // the per-vertex cap must break the loop with a forced resolution.
  auto obj = test::noisySphere(2, 5.0);
  CommonOptions c;
  c.sampling.maxSamplesPerVertex = 64;
  EngineBase eng(obj, c);
  const std::vector<core::Point> identical(3, core::Point{1.0, 1.0});
  auto s = eng.buildInitialSimplex(identical);
  core::ResamplePolicy policy;
  core::detail::maxNoiseGateWait(eng, s, {}, 1e-12, policy);
  EXPECT_EQ(eng.counters().forcedResolutions, 1);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.at(i).sampleCount(), 64);
  }
}

TEST(EngineBase, GateRespectsTimeBudget) {
  auto obj = test::noisySphere(2, 100.0);
  CommonOptions c;
  c.termination.maxTime = 50.0;
  EngineBase eng(obj, c);
  const std::vector<core::Point> identical(3, core::Point{1.0, 1.0});
  auto s = eng.buildInitialSimplex(identical);
  core::ResamplePolicy policy;
  core::detail::maxNoiseGateWait(eng, s, {}, 1e-12, policy);
  // Overshoot bounded by one (growing) block.
  EXPECT_LT(eng.ctx().now(), 50.0 + static_cast<double>(policy.maxBlock));
  EXPECT_TRUE(eng.timeExhausted());
}

}  // namespace
