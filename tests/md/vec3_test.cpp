#include "md/vec3.hpp"

#include <gtest/gtest.h>

namespace {

using sfopt::md::cross;
using sfopt::md::dot;
using sfopt::md::norm;
using sfopt::md::normalized;
using sfopt::md::normSquared;
using sfopt::md::Vec3;

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  EXPECT_EQ(a + b, (Vec3{0.0, 2.5, 5.0}));
  EXPECT_EQ(a - b, (Vec3{2.0, 1.5, 1.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(-a, (Vec3{-1.0, -2.0, -3.0}));
}

TEST(Vec3, DotAndNorm) {
  const Vec3 a{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(normSquared(a), 25.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
}

TEST(Vec3, CrossProductRightHanded) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_EQ(cross(x, y), (Vec3{0.0, 0.0, 1.0}));
  EXPECT_EQ(cross(y, x), (Vec3{0.0, 0.0, -1.0}));
  // Orthogonality.
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-2.0, 0.5, 1.5};
  EXPECT_NEAR(dot(cross(a, b), a), 0.0, 1e-12);
  EXPECT_NEAR(dot(cross(a, b), b), 0.0, 1e-12);
}

TEST(Vec3, Normalized) {
  const Vec3 a{0.0, 3.0, 4.0};
  const Vec3 n = normalized(a);
  EXPECT_NEAR(norm(n), 1.0, 1e-12);
  EXPECT_EQ(normalized(Vec3{}), (Vec3{}));
}

}  // namespace
