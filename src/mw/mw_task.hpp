#pragma once

#include <cstdint>

#include "mw/message_buffer.hpp"

namespace sfopt::mw {

/// Message tags of the MW protocol.
inline constexpr int kTagTask = 1;
inline constexpr int kTagResult = 2;
inline constexpr int kTagShutdown = 3;
/// A worker failed to execute a task (exception in executeTask); the
/// payload echoes the task id and carries the error text.  The driver
/// requeues the task on another worker, mirroring the paper's restart
/// behaviour ("when a worker is restarted by the master...", section 4.2).
inline constexpr int kTagError = 4;
/// Application/deployment configuration pushed from the master to a worker
/// before any tasks flow — used by the distributed runtime as the transport
/// greeting so a worker that (re)joins mid-run still learns the objective.
inline constexpr int kTagConfig = 5;

/// Re-implementation of the MW framework's MWTask abstraction: "the data
/// describing the task and the results computed by the workers ... the
/// abstraction of one unit of work".  Concrete tasks marshal their input
/// on the master, unmarshal it on the worker, and vice versa for results.
class MWTask {
 public:
  virtual ~MWTask() = default;

  /// Marshal the work description (master side).
  virtual void packInput(MessageBuffer& buf) const = 0;
  /// Unmarshal the work description (worker side).
  virtual void unpackInput(MessageBuffer& buf) = 0;
  /// Marshal the computed result (worker side).
  virtual void packResult(MessageBuffer& buf) const = 0;
  /// Unmarshal the computed result (master side).
  virtual void unpackResult(MessageBuffer& buf) = 0;

  [[nodiscard]] std::uint64_t taskId() const noexcept { return taskId_; }
  void setTaskId(std::uint64_t id) noexcept { taskId_ = id; }

 private:
  std::uint64_t taskId_ = 0;
};

}  // namespace sfopt::mw
