#pragma once

#include <cstdint>

namespace sfopt::mw {

/// The processor-allocation arithmetic of the paper (section 3.1 and
/// Table 3.3): a d-dimensional optimization with Ns simulations per vertex
/// uses 1 master, d+3 workers (d+1 vertices plus 2 trial vertices), d+3
/// servers and (d+3)*Ns clients, for a total of d*Ns + 3*Ns + 2*d + 7
/// processor cores.
struct ProcessorAllocation {
  std::int64_t dimension = 0;          ///< d
  std::int64_t simulationsPerVertex = 1;  ///< Ns

  [[nodiscard]] std::int64_t masters() const noexcept { return 1; }
  [[nodiscard]] std::int64_t workers() const noexcept { return dimension + 3; }
  [[nodiscard]] std::int64_t servers() const noexcept { return dimension + 3; }
  [[nodiscard]] std::int64_t clients() const noexcept {
    return (dimension + 3) * simulationsPerVertex;
  }
  [[nodiscard]] std::int64_t totalCores() const noexcept {
    return dimension * simulationsPerVertex + 3 * simulationsPerVertex + 2 * dimension + 7;
  }

  /// Sanity identity: total = master + workers + servers + clients.
  [[nodiscard]] bool consistent() const noexcept {
    return totalCores() == masters() + workers() + servers() + clients();
  }
};

}  // namespace sfopt::mw
