#pragma once

#include <array>
#include <initializer_list>
#include <stdexcept>
#include <string>

namespace sfopt::core {

/// Selects which of the seven comparison conditions of the point-to-point
/// algorithm (Algorithm 3) are made noise-aware (i.e. demand a k-sigma
/// confidence separation, resampling until resolved).  Conditions outside
/// the mask fall back to plain comparisons of the current means.
///
/// The paper's section 3.3 ablates these masks: single conditions c1..c7,
/// the combination c1+c3+c6 ("c136"), and the strict all-conditions variant
/// ("c1-7").  Conditions are numbered 1..7 as in Algorithm 3:
///   c1: reflection vs second-highest   c5: reflection vs second-highest (>=)
///   c2: reflection vs minimum          c6: contraction vs highest
///   c3: expansion vs reflection        c7: contraction vs highest (>=)
///   c4: expansion vs reflection (>=)
class PCConditionMask {
 public:
  /// All seven conditions noise-aware (the paper's strict "c1-7").
  [[nodiscard]] static PCConditionMask all() noexcept {
    PCConditionMask m;
    m.bits_.fill(true);
    return m;
  }

  /// No condition noise-aware; PC degenerates to plain comparisons.
  [[nodiscard]] static PCConditionMask none() noexcept { return PCConditionMask{}; }

  /// Noise-aware only for the listed 1-based condition numbers,
  /// e.g. only({1, 3, 6}) is the paper's "c136".
  [[nodiscard]] static PCConditionMask only(std::initializer_list<int> conditions) {
    PCConditionMask m;
    for (int c : conditions) {
      if (c < 1 || c > 7) throw std::invalid_argument("PCConditionMask: condition out of 1..7");
      m.bits_[static_cast<std::size_t>(c - 1)] = true;
    }
    return m;
  }

  /// Is 1-based condition c noise-aware?
  [[nodiscard]] bool isNoiseAware(int c) const {
    if (c < 1 || c > 7) throw std::invalid_argument("PCConditionMask: condition out of 1..7");
    return bits_[static_cast<std::size_t>(c - 1)];
  }

  /// Label like "c136", "c1-7", or "none" for bench output.
  [[nodiscard]] std::string label() const {
    bool allOn = true;
    bool anyOn = false;
    for (bool b : bits_) {
      allOn = allOn && b;
      anyOn = anyOn || b;
    }
    if (allOn) return "c1-7";
    if (!anyOn) return "none";
    std::string s = "c";
    for (int c = 1; c <= 7; ++c) {
      if (bits_[static_cast<std::size_t>(c - 1)]) s += static_cast<char>('0' + c);
    }
    return s;
  }

  friend bool operator==(const PCConditionMask&, const PCConditionMask&) = default;

 private:
  std::array<bool, 7> bits_{};
};

}  // namespace sfopt::core
