#pragma once

#include <cstddef>
#include <vector>

namespace sfopt::stats {

/// Order statistics and moments of a finite sample, computed eagerly.
/// Convenience for bench harnesses that report distribution summaries.
class Summary {
 public:
  /// Builds the summary; the input need not be sorted. Throws on empty input.
  explicit Summary(std::vector<double> values);

  [[nodiscard]] std::size_t count() const noexcept { return sorted_.size(); }
  [[nodiscard]] double min() const noexcept { return sorted_.front(); }
  [[nodiscard]] double max() const noexcept { return sorted_.back(); }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double stddev_ = 0.0;
};

/// log10(a/b) with guards: returns 0 when both are ~0 (tie at the optimum),
/// and clamps to +/-`clamp` when one side is ~0 but not the other.  This is
/// exactly the quantity plotted in the paper's pairwise comparison figures,
/// where both minima can legitimately reach 0.
[[nodiscard]] double logRatio(double a, double b, double clamp = 16.0);

}  // namespace sfopt::stats
