#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <string>

#include "mw/comm.hpp"
#include "mw/mw_task.hpp"
#include "telemetry/telemetry.hpp"

namespace sfopt::mw {

/// Re-implementation of the MW framework's MWWorker abstraction: "execute
/// worker tasks, compute results, report results back, and wait for
/// another task".
///
/// A concrete worker implements executeTask(); run() is the standard
/// receive/execute/reply loop, terminated by a shutdown message from the
/// master.  One worker instance is driven by one thread (over the
/// in-process CommWorld) or one process (over a TcpWorkerTransport).
///
/// The task counters and the execute-latency EWMA are atomics because a
/// TCP transport's heartbeat thread reads them mid-task to build fleet
/// telemetry snapshots for the master.
class MWWorker {
 public:
  MWWorker(net::Transport& comm, Rank rank) : comm_(comm), rank_(rank) {}
  virtual ~MWWorker() = default;

  MWWorker(const MWWorker&) = delete;
  MWWorker& operator=(const MWWorker&) = delete;

  /// The worker main loop.  Returns after a shutdown message.  A failing
  /// task (exception out of executeTask) is reported to the master with
  /// kTagError so it can be requeued elsewhere; the worker itself stays up.
  void run() {
    for (;;) {
      Message msg = comm_.recv(rank_);
      if (msg.tag == kTagShutdown) return;
      if (msg.tag != kTagTask) continue;  // ignore stray messages
      const std::uint64_t taskId = msg.payload.unpackUint64();
      MessageBuffer result;
      result.pack(taskId);
      const auto wallStart = std::chrono::steady_clock::now();
      const double telStart = telemetry_ != nullptr ? telemetry_->tracer().now() : 0.0;
      bool ok = true;
      std::string error;
      try {
        executeTask(msg.payload, result);
      } catch (const std::exception& e) {
        ok = false;
        error = e.what();
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wallStart)
              .count();
      const double prev = executeEwmaSeconds_.load();
      executeEwmaSeconds_.store(prev == 0.0 ? elapsed
                                            : prev + kEwmaAlpha * (elapsed - prev));
      if (telemetry_ != nullptr) {
        // Continue the master's span tree across the wire: the dispatched
        // shard.remote span is this span's parent, the ticket its trace id.
        telemetry_->tracer().emitComplete(
            "worker.execute", telStart, msg.parentSpan,
            {{"outcome", ok ? "ok" : "error"}},
            {{"rank", static_cast<double>(rank_)}}, msg.traceId);
      }
      if (!ok) {
        tasksFailed_.fetch_add(1);
        MessageBuffer errorBuf;
        errorBuf.pack(taskId);
        errorBuf.pack(error);
        comm_.send(rank_, msg.source, kTagError, std::move(errorBuf), msg.traceId,
                   msg.parentSpan);
        continue;
      }
      tasksExecuted_.fetch_add(1);
      comm_.send(rank_, msg.source, kTagResult, std::move(result), msg.traceId,
                 msg.parentSpan);
    }
  }

  [[nodiscard]] Rank rank() const noexcept { return rank_; }
  [[nodiscard]] std::uint64_t tasksExecuted() const noexcept {
    return tasksExecuted_.load();
  }
  [[nodiscard]] std::uint64_t tasksFailed() const noexcept { return tasksFailed_.load(); }

  /// Exponentially-weighted moving average of executeTask wall seconds
  /// (0 until the first task finishes).  Always maintained — the fleet
  /// snapshot wants it even when no local telemetry sink is attached.
  [[nodiscard]] double executeEwmaSeconds() const noexcept {
    return executeEwmaSeconds_.load();
  }

  /// Attach the worker-side observability spine (non-owning; must outlive
  /// run()): every task emits a `worker.execute` span carrying the
  /// master's trace context.
  void setTelemetry(telemetry::Telemetry* telemetry) { telemetry_ = telemetry; }

 protected:
  /// Unpack the task input from `in`, compute, pack the result into `out`.
  /// (The task id has already been consumed from `in` and echoed to `out`.)
  virtual void executeTask(MessageBuffer& in, MessageBuffer& out) = 0;

  [[nodiscard]] net::Transport& comm() noexcept { return comm_; }

 private:
  static constexpr double kEwmaAlpha = 0.2;

  net::Transport& comm_;
  Rank rank_;
  std::atomic<std::uint64_t> tasksExecuted_{0};
  std::atomic<std::uint64_t> tasksFailed_{0};
  std::atomic<double> executeEwmaSeconds_{0.0};
  telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace sfopt::mw
